"""Deterministic discrete-event simulation (DES) kernel with virtual time.

This module is the substrate that replaces the paper's NICTA testbed.  All
higher layers (the simulated network, the P2PSAP protocol stack, the P2PDC
environment and the distributed obstacle-problem solver) execute on top of
this kernel: computation costs and network delays advance a *virtual clock*
while the actual numerics run natively in NumPy.  Because event ordering is
a pure function of (event time, priority, sequence number), a simulation
with a fixed RNG seed is exactly reproducible.  (One deliberate exception
to the queue ordering: a :meth:`Channel.get` on a non-empty channel hands
the item over synchronously, already processed, without entering the event
queue — see :meth:`Channel.get`.  Determinism is unaffected.)

The programming model is generator-based cooperative processes, in the
style of SimPy:

>>> sim = Simulator()
>>> def proc(sim):
...     yield sim.timeout(1.5)
...     return "done"
>>> p = sim.spawn(proc(sim))
>>> sim.run()
>>> p.value
'done'
>>> sim.now
1.5

A process is any generator that yields :class:`Event` instances.  The
kernel resumes the process when the yielded event fires, sending the event
value back into the generator.  Processes are themselves events (they fire
when the generator returns), so processes can wait on each other.
"""

from __future__ import annotations

import itertools
import math
import sys
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Channel",
    "Interrupt",
    "SimulationError",
    "DeadlockError",
    "Simulator",
    "AnyOf",
    "AllOf",
]


class SimulationError(RuntimeError):
    """Base class for kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Simulator.run` when processes remain but no event
    is scheduled — every live process is waiting on something that can
    never fire."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed by the interrupter.
    Used by the fault-tolerance layer to model peer failure and by the
    control channel to abort blocking waits during reconfiguration.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event priorities: ties at the same virtual time are broken by priority
# first, then by creation order.  URGENT is reserved for kernel-internal
# bookkeeping (e.g. process termination wake-ups) so that user timeouts at
# the same instant observe a consistent state.
URGENT = 0
NORMAL = 1
LOW = 2

# CPython refcount introspection, used by the Timeout recycling fast path;
# absent on some interpreters, in which case recycling is disabled.
_getrefcount = getattr(sys, "getrefcount", None)


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, may be *triggered* (given a value and
    scheduled), and becomes *processed* once its callbacks have run.
    Callbacks receive the event as their only argument.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "_defused")

    _PENDING = object()

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok = True
        self._processed = False
        # A failed event whose error was delivered to at least one waiter
        # (or explicitly defused) does not take down the whole simulation.
        self._defused = False

    # -- state predicates ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the event queue."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (value, not exception)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is not yet triggered."""
        if self._value is Event._PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self._ok = True
        self.sim._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception; waiters will have it raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.sim._schedule(self, priority)
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so the kernel does not re-raise."""
        self._defused = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` units of virtual time in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None, priority: int = NORMAL):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        if math.isnan(delay):
            raise ValueError("timeout delay is NaN")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._ok = True
        sim._schedule(self, priority, delay=delay)

    def _rearm(self, delay: float, value: Any) -> None:
        """Re-initialize a recycled instance (kernel-internal; only ever
        called on a processed Timeout nobody else references)."""
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        if math.isnan(delay):
            raise ValueError("timeout delay is NaN")
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self.delay = delay
        self.sim._schedule(self, NORMAL, delay=delay)


class Process(Event):
    """A running generator coroutine; fires when the generator returns.

    The value of the process-event is the generator's return value, or the
    uncaught exception if it failed.
    """

    __slots__ = ("gen", "name", "_target", "_alive")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        self._alive = True
        # Kick the generator off at the current instant with URGENT
        # priority so that spawn order == first-step order.
        boot = Event(sim)
        boot._value = None
        boot._ok = True
        boot.callbacks.append(self._resume)
        sim._schedule(boot, URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not returned or raised."""
        return self._alive

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on (None if running)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a dead process is an error; interrupting a process
        twice before it resumes queues both interrupts in order.
        """
        if not self._alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self._target is not None and self._target.callbacks is not None:
            # Detach from the event being waited on; the event itself may
            # still fire later and must not resume us twice.
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        kick = Event(self.sim)
        kick._value = Interrupt(cause)
        kick._ok = False
        kick._defused = True
        kick.callbacks.append(self._resume)
        self.sim._schedule(kick, URGENT)

    # -- kernel internals --------------------------------------------------

    def _resume(self, event: Event) -> None:
        if not self._alive:
            # Stale wakeup: an interrupt kick and the original target can
            # fire in the same timestep; whichever arrives second finds
            # the process already finished and must not touch the
            # exhausted generator.
            if not event._ok:
                event._defused = True
            return
        # Save/restore rather than set/clear: a synchronous channel
        # handoff (see Channel.put) can resume a getter from inside the
        # putter's own execution, and the outer process must still be
        # the active one when control returns to it.
        prev_active = self.sim._active_proc
        self.sim._active_proc = self
        try:
            while True:
                if event._ok:
                    try:
                        target = self.gen.send(event._value)
                    except StopIteration as stop:
                        self._alive = False
                        self._target = None
                        self.succeed(stop.value, priority=URGENT)
                        return
                    except BaseException as err:
                        self._alive = False
                        self._target = None
                        self.fail(err, priority=URGENT)
                        return
                else:
                    event._defused = True
                    exc = event._value
                    try:
                        target = self.gen.throw(exc)
                    except StopIteration as stop:
                        self._alive = False
                        self._target = None
                        self.succeed(stop.value, priority=URGENT)
                        return
                    except BaseException as err:
                        if err is exc and isinstance(err, Interrupt):
                            # Process did not handle the interrupt: it dies
                            # with the interrupt as its failure value.
                            pass
                        self._alive = False
                        self._target = None
                        self.fail(err, priority=URGENT)
                        return
                if not isinstance(target, Event):
                    self._alive = False
                    self._target = None
                    self.fail(
                        SimulationError(
                            f"process {self.name!r} yielded {target!r}, "
                            "which is not an Event"
                        ),
                        priority=URGENT,
                    )
                    return
                if target.callbacks is None:
                    # Already processed: deliver its value synchronously and
                    # keep stepping the generator without a queue round-trip.
                    event = target
                    continue
                self._target = target
                target.callbacks.append(self._resume)
                return
        finally:
            self.sim._active_proc = prev_active


class _Condition(Event):
    """Base for AnyOf/AllOf composite wait conditions."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        self._n_fired = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        # Only events whose callbacks have run count as "fired" here: a
        # Timeout is *triggered* the moment it is created, but it has not
        # yet happened on the timeline.
        return {
            ev: ev._value
            for ev in self.events
            if ev.callbacks is None and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires once all constituent events have fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed(self._collect())


class Channel:
    """Unbounded FIFO message channel between processes.

    ``put`` never blocks (the channel models a mailbox with unlimited
    capacity — bounded behaviour is implemented by the protocol layers,
    which is where the paper puts it too: the buffer-management
    micro-protocol).  ``get`` returns an event that fires when a message
    is available; messages are delivered in FIFO order to getters in FIFO
    order.

    Put-side handoff
    ----------------
    A ``put`` that finds a waiting getter normally wakes it through the
    event queue: the resume is scheduled at the current instant and runs
    after every event already queued for this instant — one full queue
    round-trip per wakeup (counted in :attr:`put_wakeups`).  The
    ``sync_handoff`` opt-in delivers synchronously instead, mirroring
    the get-side fast path: the getter's callbacks run inside ``put``,
    with no queue entry at all.  That is **observably order-changing**
    whenever other events are already scheduled for the same instant —
    the getter's code then runs *before* them, and before the putter's
    own statements after ``put`` — which the trace-equality suite
    (``tests/simnet/test_put_handoff.py``) demonstrates; hence it stays
    off by default and the queue path remains the ordering contract.
    ``None`` (the default) defers to :attr:`Simulator.sync_put_handoff`
    so a whole simulation can opt in at one switch.  Synchronously
    delivered events bypass trace hooks, exactly like the get-side fast
    path.
    """

    __slots__ = ("sim", "_items", "_getters", "name", "sync_handoff",
                 "put_wakeups")

    def __init__(self, sim: "Simulator", name: str = "",
                 sync_handoff: "bool | None" = None):
        self.sim = sim
        self.name = name
        self.sync_handoff = sync_handoff
        #: How many puts landed on a waiting getter (each one is a queue
        #: round-trip in the default mode — the measurable cost the
        #: synchronous mode removes).
        self.put_wakeups = 0
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:  # cancelled/interrupted getter
                continue
            self.put_wakeups += 1
            self.sim.put_wakeups += 1
            sync = self.sync_handoff
            if sync is None:
                sync = self.sim.sync_put_handoff
            if sync:
                # Synchronous wake: deliver like step() would, but now.
                getter._value = item
                getter._ok = True
                callbacks = getter.callbacks
                getter.callbacks = None
                for cb in callbacks:
                    cb(getter)
                getter._processed = True
                return
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item.

        When an item is already buffered the event comes back *already
        processed* — a put→get direct handoff.  A process yielding it is
        resumed synchronously by the kernel's processed-event fast path
        instead of taking a round-trip through the event queue, and
        composite waits (:class:`AnyOf`/:class:`AllOf`) count it as fired
        on construction.  Timeline semantics are unchanged: the value
        was deposited at or before the current instant either way.
        """
        ev = Event(self.sim)
        if self._items:
            ev._value = self._items.popleft()
            ev.callbacks = None
            ev._processed = True
        else:
            self._getters.append(ev)
        return ev

    def cancel_get(self, getter: Event) -> None:
        """Withdraw a pending get so it never steals a future item.

        Needed by any-of waits: an un-fired get left registered would
        consume the next put invisibly.  Cancelling a get that already
        fired (or was never registered) is a no-op.
        """
        try:
            self._getters.remove(getter)
        except ValueError:
            pass

    def get_nowait(self) -> tuple[bool, Any]:
        """Non-blocking receive: ``(True, item)`` or ``(False, None)``.

        This is the primitive beneath the *asynchronous receive* semantics
        of the Asynchronous micro-protocol ("return the control to
        application immediately with or without message").
        """
        if self._items:
            return True, self._items.popleft()
        return False, None

    def peek(self) -> tuple[bool, Any]:
        """Like :meth:`get_nowait` but leaves the item in the channel."""
        if self._items:
            return True, self._items[0]
        return False, None

    def clear(self) -> int:
        """Drop all queued items, returning how many were dropped."""
        n = len(self._items)
        self._items.clear()
        return n

    def drop_getters(self) -> int:
        """Withdraw every pending get, returning how many were dropped.

        The abrupt-death path: interrupting a process detaches it from
        the composite event it waits on, but a ``get`` it had registered
        stays in the queue and would silently eat the next ``put`` — a
        message meant for whoever takes over the channel (e.g. a
        restarted task on the same peer).  Dropping the getters keeps
        the channel's items flowing to live consumers only.
        """
        n = len(self._getters)
        self._getters.clear()
        return n


class Simulator:
    """The virtual-time event loop.

    Maintains a priority queue of ``(time, priority, seq, event)`` entries.
    ``seq`` is a monotone counter making the ordering total and therefore
    the whole simulation deterministic.
    """

    #: Cap on recycled Timeout instances kept per simulator (see
    #: :meth:`timeout`); small — a pool this size already absorbs every
    #: timeout chain the protocol stack creates.
    _TIMEOUT_POOL_MAX = 64

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._active_proc: Optional[Process] = None
        self._n_live_processes = 0
        self._trace_hooks: list[Callable[[float, Event], None]] = []
        self._timeout_pool: list[Timeout] = []
        #: Simulation-wide default for :class:`Channel` put-side handoff
        #: (see the Channel docstring).  Off: the queue round-trip is the
        #: ordering contract; the synchronous wake is opt-in because it
        #: reorders same-instant events.
        self.sync_put_handoff = False
        #: Observability counters (plain ints, exported to the telemetry
        #: registry by the harness after a run).  Strictly write-only
        #: from the loop's point of view: nothing reads them back into
        #: scheduling, so event order and the clock are untouched.
        self.events_processed = 0
        self.max_queue_depth = 0
        self.put_wakeups = 0

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (seconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_proc

    # -- event constructors --------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event (a 'promise')."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now.

        Allocation-light: processed timeouts that provably have no
        remaining references (see :meth:`step`) are recycled instead of
        constructing a fresh object per call — the dominant allocation
        of timeout-chain-heavy simulations.
        """
        pool = self._timeout_pool
        if pool:
            t = pool.pop()
            t._rearm(delay, value)
            return t
        return Timeout(self, delay, value)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process from generator ``gen``."""
        proc = Process(self, gen, name=name)
        self._n_live_processes += 1
        proc.callbacks.append(self._process_ended)
        return proc

    def channel(self, name: str = "",
                sync_handoff: "bool | None" = None) -> Channel:
        """A fresh FIFO channel (``sync_handoff`` as in :class:`Channel`)."""
        return Channel(self, name, sync_handoff=sync_handoff)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def _process_ended(self, event: Event) -> None:
        self._n_live_processes -= 1

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    def add_trace_hook(self, hook: Callable[[float, Event], None]) -> None:
        """Register a callable invoked as ``hook(time, event)`` for every
        processed event.  Used by the OML measurement layer."""
        self._trace_hooks.append(hook)

    # -- execution -----------------------------------------------------------

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        depth = len(self._queue)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        self.events_processed += 1
        when, _prio, _seq, event = heappop(self._queue)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for cb in callbacks:
            cb(event)
        event._processed = True
        if not event._ok and not event._defused:
            # Nobody waited on a failed event: surface the error.
            raise event._value
        if self._trace_hooks:
            for hook in self._trace_hooks:
                hook(when, event)
        # Recycle plain Timeouts nobody references any more (refcount 2 =
        # the local variable + getrefcount's argument): the next
        # sim.timeout() reuses the object instead of allocating.
        if (
            type(event) is Timeout
            and _getrefcount is not None
            and _getrefcount(event) == 2
            and len(self._timeout_pool) < self._TIMEOUT_POOL_MAX
        ):
            event._value = None  # don't pin the payload while pooled
            self._timeout_pool.append(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or virtual time reaches ``until``.

        Raises :class:`DeadlockError` if live processes remain when the
        queue drains and no ``until`` was given — that always indicates a
        bug (e.g. a synchronous receive that can never be satisfied), so
        failing loudly beats silently returning.
        """
        queue = self._queue
        step = self.step
        if until is not None:
            if until < self._now:
                raise ValueError(f"until={until} is in the past (now={self._now})")
            horizon = Timeout(self, until - self._now, priority=URGENT)
            while queue:
                if queue[0][3] is horizon:
                    self._now = until
                    return
                step()
            return
        while queue:
            step()
        if self._n_live_processes > 0:
            raise DeadlockError(
                f"simulation ran dry with {self._n_live_processes} live "
                "process(es) still waiting"
            )

    def peek_time(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else math.inf
