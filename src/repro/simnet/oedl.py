"""OEDL-style declarative experiment descriptions.

The paper writes "plural description files, using OMF's Experiment
Description Language (OEDL), corresponding to different scenarios", each
containing the network topology (peer/cluster placement), network
parameters (the inter-cluster latency), and the application with its
parameters.

:class:`ExperimentDescription` is the Python analogue: a declarative
object that fully determines one experiment run — topology, impairments,
application parameters and seed — plus :meth:`materialize` which builds
the simulator, network and measurement library for it.  Experiment
harnesses construct these descriptions and never touch the substrate
directly, mirroring OMF's separation between description and execution.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from .kernel import Simulator
from .network import Network
from .oml import MeasurementLibrary
from .topology import NICTA_SPEC, TestbedSpec, nicta_testbed

__all__ = ["ExperimentDescription", "Deployment"]


@dataclasses.dataclass(frozen=True)
class ExperimentDescription:
    """Everything needed to reproduce one run, as data.

    Attributes mirror the contents the paper lists for its OEDL files:

    - topology: ``n_peers``, ``n_clusters`` and the testbed ``spec``
      (peer IP/cluster assignment is derived deterministically);
    - network parameters: the WAN latency lives in ``spec.wan_delay``
      (100 ms in the paper);
    - application: free-form ``app_name`` and ``app_params`` handed to the
      P2PDC ``run`` command.
    """

    name: str
    n_peers: int
    n_clusters: int = 1
    spec: TestbedSpec = NICTA_SPEC
    app_name: str = ""
    app_params: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_peers < 1:
            raise ValueError("n_peers must be >= 1")
        if not 1 <= self.n_clusters <= self.n_peers:
            raise ValueError("n_clusters must be in [1, n_peers]")
        # Freeze the mapping so descriptions are safely hashable-by-value.
        object.__setattr__(self, "app_params", dict(self.app_params))

    def with_params(self, **updates: Any) -> "ExperimentDescription":
        """A copy with app_params entries replaced/added."""
        params = dict(self.app_params)
        params.update(updates)
        return dataclasses.replace(self, app_params=params)

    def materialize(self) -> "Deployment":
        """Build the simulator / network / OML stack for this description."""
        sim = Simulator()
        net = nicta_testbed(
            sim, self.n_peers, n_clusters=self.n_clusters,
            spec=self.spec, seed=self.seed,
        )
        oml = MeasurementLibrary(sim)
        return Deployment(description=self, sim=sim, network=net, oml=oml)

    def summary(self) -> str:
        """One-line human-readable description, for harness logs."""
        wan = f"{self.spec.wan_delay * 1e3:.0f}ms"
        return (
            f"{self.name}: {self.n_peers} peer(s) / {self.n_clusters} "
            f"cluster(s), WAN {wan}, app={self.app_name or '-'} "
            f"params={dict(self.app_params)}"
        )


@dataclasses.dataclass
class Deployment:
    """A materialized experiment: live simulator, network and OML."""

    description: ExperimentDescription
    sim: Simulator
    network: Network
    oml: MeasurementLibrary

    @property
    def peer_names(self) -> list[str]:
        return list(self.network.nodes.keys())
