"""OML-style measurement collection.

The paper instruments experiments with OML (Orbit Measurement Library):
applications define *measurement points* (named, typed tuple streams) and
inject samples; a collection server aggregates them into series that the
experimenter queries afterwards.

:class:`MeasurementLibrary` reproduces that workflow in-process.  Every
sample is stamped with the simulator's virtual time, so post-hoc analysis
(time series of residuals, per-peer relaxation rates, link utilization)
works exactly like querying an OML database.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Iterable, Mapping, Sequence

from .kernel import Simulator

__all__ = ["MeasurementPoint", "MeasurementLibrary", "Sample", "SeriesStats"]


@dataclasses.dataclass(frozen=True)
class Sample:
    """One injected measurement: virtual timestamp + field values."""

    t: float
    values: tuple[Any, ...]


@dataclasses.dataclass(frozen=True)
class SeriesStats:
    """Summary statistics over one numeric field of a measurement point."""

    count: int
    mean: float
    minimum: float
    maximum: float
    total: float

    @staticmethod
    def of(xs: Sequence[float]) -> "SeriesStats":
        if not xs:
            return SeriesStats(0, math.nan, math.nan, math.nan, 0.0)
        total = float(sum(xs))
        return SeriesStats(len(xs), total / len(xs), float(min(xs)), float(max(xs)), total)


class MeasurementPoint:
    """A named stream of typed tuples, in the OML sense.

    The schema is a sequence of field names; ``inject`` validates arity so
    schema drift is caught at the injection site rather than at analysis
    time.
    """

    def __init__(self, sim: Simulator, name: str, fields: Sequence[str]):
        if not fields:
            raise ValueError("measurement point needs at least one field")
        if len(set(fields)) != len(fields):
            raise ValueError(f"duplicate field names in {fields!r}")
        self.sim = sim
        self.name = name
        self.fields = tuple(fields)
        self.samples: list[Sample] = []

    def inject(self, *values: Any) -> None:
        """Record one sample at the current virtual time."""
        if len(values) != len(self.fields):
            raise ValueError(
                f"measurement point {self.name!r} expects {len(self.fields)} "
                f"fields {self.fields}, got {len(values)}"
            )
        self.samples.append(Sample(self.sim.now, tuple(values)))

    def column(self, field: str) -> list[Any]:
        """All values of one field, in injection order."""
        idx = self._index(field)
        return [s.values[idx] for s in self.samples]

    def timeseries(self, field: str) -> list[tuple[float, Any]]:
        """(time, value) pairs for one field."""
        idx = self._index(field)
        return [(s.t, s.values[idx]) for s in self.samples]

    def where(self, **conditions: Any) -> list[Sample]:
        """Samples whose named fields equal the given values."""
        idxs = {self._index(k): v for k, v in conditions.items()}
        return [
            s for s in self.samples
            if all(s.values[i] == v for i, v in idxs.items())
        ]

    def stats(self, field: str) -> SeriesStats:
        """Numeric summary of one field."""
        return SeriesStats.of([float(v) for v in self.column(field)])

    def last(self, field: str) -> Any:
        """Most recently injected value of one field."""
        col = self.column(field)
        if not col:
            raise LookupError(f"no samples in measurement point {self.name!r}")
        return col[-1]

    def _index(self, field: str) -> int:
        try:
            return self.fields.index(field)
        except ValueError:
            raise KeyError(
                f"measurement point {self.name!r} has no field {field!r}; "
                f"known fields: {self.fields}"
            ) from None

    def __len__(self) -> int:
        return len(self.samples)


class MeasurementLibrary:
    """The in-process OML server: a registry of measurement points."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._points: dict[str, MeasurementPoint] = {}

    def define(self, name: str, fields: Sequence[str]) -> MeasurementPoint:
        """Define (or fetch, if schema-compatible) a measurement point."""
        if name in self._points:
            existing = self._points[name]
            if existing.fields != tuple(fields):
                raise ValueError(
                    f"measurement point {name!r} redefined with different "
                    f"schema: {existing.fields} vs {tuple(fields)}"
                )
            return existing
        mp = MeasurementPoint(self.sim, name, fields)
        self._points[name] = mp
        return mp

    def __getitem__(self, name: str) -> MeasurementPoint:
        return self._points[name]

    def __contains__(self, name: str) -> bool:
        return name in self._points

    def points(self) -> Iterable[MeasurementPoint]:
        return self._points.values()

    def snapshot(self) -> Mapping[str, list[Sample]]:
        """A plain-dict dump of all points, for report generation."""
        return {name: list(mp.samples) for name, mp in self._points.items()}
