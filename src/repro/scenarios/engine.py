"""The scenario engine: live solves driven through seeded adversity.

:func:`run_scenario` is the whole pipeline for one script:

1. **Baseline** — deploy the script's topology (same heterogeneous
   rates, same checkpoint cadence) and run the solve fault-free.  Its
   elapsed time T anchors the script's fractional event times; its
   residual anchors the tolerance-match invariant.
2. **Faulted run** — deploy again (same seed, so identical link RNG
   streams), submit, arm the :class:`~repro.scenarios.injector.Injector`
   at the submission instant, and *step the simulator manually* with a
   virtual-time budget per epoch — a run that exceeds it is declared
   deadlocked, torn down, and reported as a violation instead of hanging
   the host.  Churn events abort the solve at an epoch boundary; the
   engine then re-partitions (peer leaves → α−1, spare joins → α+1) and
   resubmits warm-started from the surviving peers' assembled planes.
   The whole faulted run records a schedule trace per epoch.
3. **Invariants** — deadlock-freedom (step 2), then the post-hoc checks
   of :mod:`repro.scenarios.invariants` over the traces and the final
   report: envelope monotonicity between fault epochs, verified STOP,
   no false STOP, tolerance match with the baseline.

Everything is deterministic: same script ⇒ same baseline ⇒ same event
times ⇒ same faulted trajectory, bit for bit, on either sweep executor.
On violation the recorded traces are dumped (``dump_dir``) in the
``repro.parallel.trace_io`` format for offline replay via
``python -m repro.experiments replay``.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional

import numpy as np

from ..core.environment import P2PDC
from ..parallel.trace import ScheduleTrace, record_schedule
from ..parallel.trace_io import save_trace
from ..simnet.kernel import Simulator
from ..simnet.topology import TestbedSpec, nicta_testbed
from ..solvers.distributed_richardson import ObstacleApplication
from .injector import AppliedEvent, Injector
from .invariants import check_all
from .script import ScenarioScript, node_name

__all__ = ["run_scenario", "ScenarioResult", "EpochOutcome"]

#: Per-epoch virtual-time budget, as a multiple of the baseline elapsed
#: time, plus a constant floor.  Generous on purpose: link degradation
#: and crash downtime legitimately stretch an epoch; only a genuine
#: deadlock (or livelock) exceeds 60x + 300 s.
EPOCH_BUDGET_FACTOR = 60.0
EPOCH_BUDGET_FLOOR = 300.0


@dataclasses.dataclass
class EpochOutcome:
    """One submitted solve within the faulted run."""

    index: int
    n_peers: int
    peer_names: list[str]
    elapsed: float
    relaxations: float
    residual: float
    aborted: bool


@dataclasses.dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    script: ScenarioScript
    baseline_elapsed: float
    baseline_residual: float
    epochs: list[EpochOutcome]
    violations: list[str]
    injections: list[AppliedEvent]
    traces: list[ScheduleTrace]
    #: Final assembled iterate (None when the run died before finishing).
    u: Optional[np.ndarray]
    final_residual: Optional[float]
    #: Where traces were dumped on violation (empty otherwise).
    trace_paths: list[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [self.script.describe(), ""]
        lines.append(f"baseline: elapsed={self.baseline_elapsed:.3f}s "
                     f"residual={self.baseline_residual:.3e}")
        for ep in self.epochs:
            state = "aborted (churn)" if ep.aborted else "completed"
            lines.append(
                f"epoch {ep.index}: alpha={ep.n_peers} "
                f"elapsed={ep.elapsed:.3f}s relax={ep.relaxations:.1f} "
                f"residual={ep.residual:.3e} [{state}]"
            )
        for rec in self.injections:
            mark = "applied" if rec.applied else "skipped"
            lines.append(f"t={rec.time:8.3f}  [{mark}] "
                         f"{rec.event.kind}: {rec.detail}")
        if self.final_residual is not None:
            lines.append(f"final residual: {self.final_residual:.3e}")
        if self.violations:
            lines.append("VIOLATIONS:")
            lines.extend(f"  - {v}" for v in self.violations)
            lines.extend(f"  trace dumped: {p}" for p in self.trace_paths)
        else:
            lines.append("all invariants hold")
        return "\n".join(lines)


# -- deployment -----------------------------------------------------------------


def _build_env(script: ScenarioScript) -> P2PDC:
    sim = Simulator()
    net = nicta_testbed(
        sim, script.n_nodes, n_clusters=script.n_clusters,
        spec=TestbedSpec(cpu_hz=script.cpu_hz), seed=script.seed,
    )
    # Heterogeneous compute rates are static node properties — set
    # before P2PDC so the JOIN messages carry them.
    for i, rate in enumerate(script.compute_rates):
        net.nodes[node_name(i)].cpu_hz = script.cpu_hz * rate
    env = P2PDC(sim, net, enable_fault_tolerance=True)
    env.register_everywhere(ObstacleApplication())
    return env


def _solver_params(script: ScenarioScript) -> dict:
    params = {
        "n": script.n, "tol": script.tol, "problem": script.problem,
        "checkpoint_every": script.checkpoint_every,
    }
    if script.executor != "inline":
        params["executor"] = script.executor
    return params


def _emergency_teardown(env: P2PDC) -> None:
    """Abandon a wedged run without poisoning the host process: crash
    every running Calculate() (their ``finally`` blocks drain sweep
    workspaces and release shared runners), step the interrupts through,
    then shut the deployment down."""
    for executor in env.executors.values():
        try:
            executor.crash_current_task()
        except Exception:
            pass
    for _ in range(50_000):
        if all(ex._calc_proc is None for ex in env.executors.values()):
            break
        try:
            env.sim.step()
        except Exception:
            break
    env.shutdown()


def _run_baseline(script: ScenarioScript) -> tuple[float, float]:
    env = _build_env(script)
    try:
        run = env.run_to_completion(
            "obstacle", params=_solver_params(script),
            n_peers=script.n_peers, scheme=script.scheme, timeout=36_000.0,
        )
        return run.elapsed, run.output.residual
    except TimeoutError:
        _emergency_teardown(env)
        raise
    finally:
        env.shutdown()


# -- the faulted run ------------------------------------------------------------


def _drive_epochs(env, script, injector, horizon, violations, epochs):
    """Submit/step/re-partition until the solve completes (or dies).

    Returns the final epoch's DistributedSolveReport, or None when the
    run deadlocked or failed (a violation is recorded either way).
    """
    sim = env.sim
    n_peers = script.n_peers
    warm_u = None
    warm_label = None
    leaving: Optional[str] = None
    armed = False
    epoch = 0
    while True:
        outcome: dict = {}
        sim.spawn(
            _epoch_driver(env, script, n_peers, warm_u, warm_label,
                          leaving, epoch, outcome),
            name=f"scenario-epoch{epoch}",
        )
        deadline = sim.now + EPOCH_BUDGET_FACTOR * max(horizon, 1.0) \
            + EPOCH_BUDGET_FLOOR
        while "run" not in outcome and "error" not in outcome:
            if sim.peek_time() > deadline:
                violations.append(
                    f"deadlock: epoch {epoch} still incomplete at "
                    f"t={deadline:.1f} (baseline T={horizon:.2f}s)"
                )
                _emergency_teardown(env)
                return None
            try:
                sim.step()
            except Exception as err:
                violations.append(f"epoch {epoch} crashed the kernel: {err!r}")
                _emergency_teardown(env)
                return None
            if not armed and "submitted_at" in outcome:
                injector.arm(outcome["submitted_at"], horizon)
                armed = True
        if "error" in outcome:
            violations.append(f"epoch {epoch} run failed: {outcome['error']!r}")
            return None
        run = outcome["run"]
        report = run.output
        churn = injector.epoch_breaks[:1]
        injector.epoch_breaks.clear()
        epochs.append(EpochOutcome(
            index=epoch, n_peers=run.n_peers,
            peer_names=list(run.peer_names), elapsed=run.elapsed,
            relaxations=report.relaxations, residual=report.residual,
            aborted=bool(churn),
        ))
        if not churn:
            return report
        # Epoch boundary: re-partition per the churn event and resume
        # from the aborted epoch's assembled planes.
        ev = churn[0]
        warm_u = np.array(report.u, copy=True)
        warm_label = f"scenario-epoch{epoch}"
        leaving = None
        if ev.kind == "leave":
            leaving = run.peer_names[ev.rank]
            env.clients[leaving].leave()
            n_peers -= 1
        else:
            n_peers += 1
        epoch += 1


def _epoch_driver(env, script, n_peers, warm_u, warm_label, leaving,
                  epoch, outcome):
    """DES process submitting one epoch once the topology is ready."""
    sim = env.sim
    try:
        if epoch > 0:
            # Let the previous epoch's LEAVE/RESULT traffic settle.
            yield sim.timeout(1.0)
        while leaving is not None and leaving in env.topology.peers:
            yield sim.timeout(0.05)
        while len(env.topology.peers) < n_peers:
            yield sim.timeout(0.05)
        params = _solver_params(script)
        if warm_u is not None:
            params["warm_start_u"] = warm_u
            params["warm_start_label"] = warm_label
        done = env.run("obstacle", params=params, n_peers=n_peers,
                       scheme=script.scheme)
        outcome["submitted_at"] = sim.now

        def on_done(ev) -> None:
            if ev.ok:
                outcome["run"] = ev.value
            else:
                # A failed TaskRun must not detonate at the next step;
                # the engine reports it as a violation instead.
                ev.defused()
                outcome["error"] = ev.value

        if done.triggered:
            on_done(done)
        else:
            done.callbacks.append(on_done)
    except Exception as err:  # collect() shortfalls etc.
        outcome["error"] = err


def run_scenario(
    script: ScenarioScript,
    dump_dir: Optional[str] = None,
) -> ScenarioResult:
    """Run one scenario end to end and check every standing invariant."""
    script.validate()
    baseline_elapsed, baseline_residual = _run_baseline(script)

    env = _build_env(script)
    injector = Injector(env, script)
    violations: list[str] = []
    epochs: list[EpochOutcome] = []
    final_report = None
    with record_schedule() as recorder:
        try:
            final_report = _drive_epochs(
                env, script, injector, baseline_elapsed, violations, epochs,
            )
        finally:
            injector.close()
            env.shutdown()
    traces = recorder.all_traces()

    check_all(traces, final_report, script.tol, baseline_residual, violations)

    trace_paths: list[str] = []
    if violations and dump_dir is not None:
        out = Path(dump_dir)
        out.mkdir(parents=True, exist_ok=True)
        for i, trace in enumerate(traces):
            path = out / f"scenario-seed{script.seed}-epoch{i}.npz"
            save_trace(trace, path)
            trace_paths.append(str(path))

    return ScenarioResult(
        script=script,
        baseline_elapsed=baseline_elapsed,
        baseline_residual=baseline_residual,
        epochs=epochs,
        violations=violations,
        injections=list(injector.log),
        traces=traces,
        u=None if final_report is None else final_report.u,
        final_residual=None if final_report is None else final_report.residual,
        trace_paths=trace_paths,
    )
