"""Standing invariants every scenario run must satisfy.

These are the fault-tolerance claims of the paper's Section II.D, made
checkable: adversity may slow a solve down, but it must never make the
environment *lie*.

no false STOP
    when the final epoch reports a verified STOP, one more global
    Gauss-Seidel sweep of the assembled solution must move it by at most
    a small multiple of the tolerance — a STOP certified against stale
    or crash-regressed state would fail this.
verified STOP
    the final (non-aborted) epoch terminates through the detector, not
    the abort path: every peer reports a ``converged_at``.
tolerance match
    the faulted solve's final residual is within a small factor of the
    fault-free baseline's — crashes and churn may not degrade the
    answer's quality.
error-envelope monotonicity between fault epochs
    replaying the recorded schedule, the sup-norm distance to the true
    solution over everything a future sweep may read (blocks *and*
    ghosts) never grows at a sweep: sweeps are non-expansive, so only
    *fault* events (a restore to an older checkpoint, a stale ghost
    write) may raise the envelope — and those re-base it without a
    check.  This is the asynchronous-convergence envelope argument
    (eq. (5)) holding *through* the injected faults.

Deadlock-freedom (the remaining standing invariant) is checked by the
engine itself: an epoch that outlives its virtual-time budget is torn
down and reported as a violation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..numerics.richardson import projected_richardson
from ..parallel.trace import ScheduleTrace, replay_trace
from ..solvers.distributed_richardson import get_problem

__all__ = [
    "reference_solution",
    "check_error_envelope",
    "check_no_false_stop",
    "check_tolerance_match",
    "ENVELOPE_EPS",
    "STOP_MARGIN",
    "RESIDUAL_MARGIN",
]

#: Slack on the envelope check: the reference is itself solved to ~1e-10
#: and float64 sweeps accumulate rounding, so "never grows" is asserted
#: up to this absolute eps.
ENVELOPE_EPS = 1e-7

#: A verified STOP must leave the assembled iterate within this multiple
#: of tol under one more global sweep (the distributed streak criterion
#: certifies per-block diffs; a global sweep mixes block boundaries, so
#: an exact 1x bound would be wrong even fault-free).
STOP_MARGIN = 5.0

#: Faulted final residual must be within this factor of the baseline's.
RESIDUAL_MARGIN = 5.0

_reference_cache: dict[tuple[str, int], np.ndarray] = {}


def reference_solution(problem_kind: str, n: int) -> np.ndarray:
    """The problem's solution to ~1e-10, cached per (kind, n)."""
    key = (problem_kind, n)
    ref = _reference_cache.get(key)
    if ref is None:
        result = projected_richardson(
            get_problem(problem_kind, n), tol=1e-10, max_relaxations=200_000,
        )
        if not result.converged:
            raise RuntimeError(
                f"reference solve for {key} did not converge"
            )
        ref = _reference_cache[key] = result.u
    return ref


def _rank_errors(st, ref: np.ndarray) -> float:
    """Sup-norm distance to the reference over everything the peer holds
    (``st`` is a live BlockState or a PeerSnapshot — same attributes)."""
    worst = float(np.max(np.abs(
        np.asarray(st.block, dtype=np.float64) - ref[st.lo:st.hi])))
    if st.ghost_below is not None:
        worst = max(worst, float(np.max(np.abs(
            np.asarray(st.ghost_below, dtype=np.float64) - ref[st.lo - 1]))))
    if st.ghost_above is not None:
        worst = max(worst, float(np.max(np.abs(
            np.asarray(st.ghost_above, dtype=np.float64) - ref[st.hi]))))
    return worst


def check_error_envelope(
    trace: ScheduleTrace,
    violations: list[str],
    label: str = "",
    eps: float = ENVELOPE_EPS,
) -> int:
    """Replay ``trace`` asserting envelope monotonicity between faults.

    Returns the number of sweep events checked.  Violations are appended
    to ``violations`` (one per offending sweep, capped at 3 per trace so
    a systematically broken run doesn't flood the report).
    """
    ref = reference_solution(trace.solve["problem"], trace.solve["n"])
    per_rank: dict[int, float] = {
        rank: _rank_errors(snap, ref) for rank, snap in trace.peers.items()
    }
    checked = 0
    flagged = 0

    def envelope() -> float:
        return max(per_rank.values()) if per_rank else 0.0

    def on_event(ev, states) -> None:
        nonlocal checked, flagged
        if ev.kind == "end":
            before = envelope()
            per_rank[ev.rank] = _rank_errors(states[ev.rank], ref)
            after = envelope()
            checked += 1
            if after > before + eps and flagged < 3:
                flagged += 1
                violations.append(
                    f"{label}envelope grew at sweep (rank {ev.rank}, "
                    f"it {ev.iteration}): {before:.3e} -> {after:.3e}"
                )
        elif ev.kind in ("ghost", "restore"):
            # Fault/staleness events legitimately re-base the envelope
            # (a restored block is older; a delayed plane carries an
            # earlier epoch's error) — recompute, don't check.
            per_rank[ev.rank] = _rank_errors(states[ev.rank], ref)

    replay_trace(trace, executor="inline", on_event=on_event)
    return checked


def check_no_false_stop(
    u: np.ndarray,
    problem_kind: str,
    n: int,
    tol: float,
    violations: list[str],
    margin: float = STOP_MARGIN,
) -> float:
    """One more global sweep of the assembled solution must be quiet."""
    result = projected_richardson(
        get_problem(problem_kind, n), tol=np.inf,
        max_relaxations=1, u0=np.asarray(u, dtype=np.float64),
    )
    diff = result.final_diff
    if not diff <= margin * tol:
        violations.append(
            f"false STOP: a global sweep of the final iterate moved it by "
            f"{diff:.3e} (> {margin:g} x tol={tol:g})"
        )
    return float(diff)


def check_tolerance_match(
    residual: float,
    baseline_residual: float,
    violations: list[str],
    margin: float = RESIDUAL_MARGIN,
) -> None:
    """The faulted solve must reach the fault-free solution quality."""
    bound = margin * max(baseline_residual, 1e-300)
    if not np.isfinite(residual) or residual > bound:
        violations.append(
            f"tolerance mismatch: faulted residual {residual:.3e} vs "
            f"baseline {baseline_residual:.3e} (allowed {margin:g}x)"
        )


def check_verified_stop(report, violations: list[str]) -> None:
    """Every peer of the final epoch stopped through the detector."""
    missing = [rep.rank for rep in report.per_peer
               if rep.converged_at is None]
    if missing:
        violations.append(
            f"final epoch ended without a verified STOP on rank(s) {missing}"
        )


def check_all(
    traces: list[ScheduleTrace],
    final_report,
    tol: float,
    baseline_residual: float,
    violations: list[str],
) -> None:
    """Run every post-hoc invariant (the engine adds deadlock checks)."""
    for i, trace in enumerate(traces):
        check_error_envelope(trace, violations, label=f"epoch {i}: ")
    if final_report is None:
        return
    check_verified_stop(final_report, violations)
    check_no_false_stop(
        final_report.u, final_report.per_peer[0].extra["problem"],
        final_report.n, tol, violations,
    )
    check_tolerance_match(final_report.residual, baseline_residual, violations)
