"""The fault injector: drives a :class:`ScenarioScript` into a live run.

The injector is a DES process spawned when the scenario engine submits
the solve: it sleeps to each event's firing time (``t_submit + at·T``,
with T the fault-free baseline's elapsed time) and applies the event to
the deployment — node death and executor crash, topology re-join and
checkpoint-recovered restart, abort broadcasts for churn, link
reconfiguration, background load.  Everything it does goes through the
same public surfaces the environment itself uses
(:meth:`TaskExecutor.crash_current_task` /
:meth:`~repro.core.task_execution.TaskExecutor.restart_crashed_task`,
:meth:`TopologyClient.join`, :meth:`Link.reconfigure`), so a scenario
exercises the real recovery machinery, not a parallel implementation.

Events that cannot apply (a crash firing between epochs when no task is
running, a restart whose crash was skipped) are *recorded as skipped*
rather than raised: a seeded schedule is a fuzzing input, and the engine
reports what actually happened.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..simnet.kernel import Interrupt
from ..simnet.network import Netem
from .script import ScenarioEvent, ScenarioScript, node_name

__all__ = ["Injector", "AppliedEvent"]


@dataclasses.dataclass(frozen=True)
class AppliedEvent:
    """What one scheduled event actually did, with its firing time."""

    time: float
    event: ScenarioEvent
    applied: bool
    detail: str


class Injector:
    """Applies a script's events to a live P2PDC deployment."""

    def __init__(self, env, script: ScenarioScript):
        self.env = env
        self.script = script
        self.log: list[AppliedEvent] = []
        #: Churn events awaiting the engine's epoch handling (the
        #: injector aborts the solve; the engine re-partitions).
        self.epoch_breaks: list[ScenarioEvent] = []
        self._crashed_rank: Optional[int] = None
        self._crashed_name: Optional[str] = None
        self._proc = None

    # -- lifecycle -----------------------------------------------------------------

    def arm(self, t0: float, horizon: float) -> None:
        """Start firing events; ``t0`` is the submission instant and
        ``horizon`` the baseline elapsed time the fractions scale by."""
        if self._proc is not None:
            raise RuntimeError("injector already armed")
        self._proc = self.env.sim.spawn(
            self._run(t0, horizon), name="scenario-injector"
        )

    def _run(self, t0: float, horizon: float):
        sim = self.env.sim
        try:
            for ev in self.script.events:
                target = t0 + ev.at * horizon
                if target > sim.now:
                    yield sim.timeout(target - sim.now)
                self._apply(ev)
        except Interrupt:
            return

    def close(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("close")

    # -- event application ------------------------------------------------------------

    def _record(self, ev: ScenarioEvent, applied: bool, detail: str) -> None:
        self.log.append(AppliedEvent(
            time=self.env.sim.now, event=ev, applied=applied, detail=detail,
        ))

    def applied(self, kind: Optional[str] = None) -> list[AppliedEvent]:
        return [rec for rec in self.log
                if rec.applied and (kind is None or rec.event.kind == kind)]

    def _apply(self, ev: ScenarioEvent) -> None:
        handler = getattr(self, f"_apply_{ev.kind}")
        handler(ev)

    def _current_run(self):
        return self.env.task_manager._current

    def _apply_crash(self, ev: ScenarioEvent) -> None:
        run = self._current_run()
        if run is None or ev.rank >= len(run.peer_names):
            self._record(ev, False, "no task running at fire time")
            return
        name = run.peer_names[ev.rank]
        if name == self.env.server_name:
            self._record(ev, False, "refusing to crash the server peer")
            return
        node = self.env.network.nodes[name]
        node.fail()  # NIC dark first: the dying peer transmits nothing
        if not self.env.executors[name].crash_current_task():
            node.recover()  # nothing was running; leave the node usable
            self._record(ev, False, f"{name} had no running sub-task")
            return
        self._crashed_rank = ev.rank
        self._crashed_name = name
        self._record(ev, True, f"killed {name} (rank {ev.rank})")

    def _apply_restart(self, ev: ScenarioEvent) -> None:
        if self._crashed_name is None:
            self._record(ev, False, "no crashed peer to restart")
            return
        name, rank = self._crashed_name, self._crashed_rank
        self._crashed_name = self._crashed_rank = None
        self.env.network.nodes[name].recover()
        # The ping loop died with the machine; re-join from scratch (a
        # possibly-evicted peer re-registers, a not-yet-evicted one just
        # refreshes its record).
        client = self.env.clients[name]
        client.close()
        client.join()
        ft = self.env.fault_tolerance
        checkpoint = ft.store.latest(rank) if ft is not None else None
        recovery = None if checkpoint is None else checkpoint.state
        self.env.executors[name].restart_crashed_task(recovery)
        self._record(ev, True, (
            f"restarted {name} (rank {rank}) from "
            + (f"checkpoint@sweep {recovery.get('sweep', 0)}"
               if recovery is not None else "cold state")
        ))

    def _abort_current(self) -> Optional[list[str]]:
        """Broadcast an abort STOP to every peer of the current run."""
        run = self._current_run()
        if run is None:
            return None
        server_bus = self.env.buses[self.env.server_name]
        for peer in run.peer_names:
            # converged_at stays None on an aborted peer: the report
            # records "stopped, not converged", and the next epoch warm
            # starts from whatever iterate the abort froze.
            server_bus.send(peer, {
                "kind": "APPMSG", "src_rank": -1, "body": ("STOP", None),
            })
        return list(run.peer_names)

    def _apply_leave(self, ev: ScenarioEvent) -> None:
        peers = self._abort_current()
        if peers is None or ev.rank >= len(peers):
            self._record(ev, False, "no task running at fire time")
            return
        self.epoch_breaks.append(ev)
        self._record(ev, True,
                     f"aborted epoch; {peers[ev.rank]} (rank {ev.rank}) "
                     "will leave")

    def _apply_join(self, ev: ScenarioEvent) -> None:
        if self._abort_current() is None:
            self._record(ev, False, "no task running at fire time")
            return
        self.epoch_breaks.append(ev)
        self._record(ev, True, "aborted epoch; a spare peer will join")

    def _apply_link(self, ev: ScenarioEvent) -> None:
        args = ev.arg_dict()
        a, b = ev.link
        for src, dst in ((a, b), (b, a)):
            link = self.env.network.link(src, dst)
            bandwidth = None
            if "bandwidth_scale" in args:
                bandwidth = link.bandwidth_bps * args["bandwidth_scale"]
            link.reconfigure(
                bandwidth_bps=bandwidth,
                netem=Netem(
                    delay=args.get("delay", link.netem.delay),
                    jitter=args.get("jitter", link.netem.jitter),
                    loss=args.get("loss", link.netem.loss),
                ),
            )
        self._record(ev, True, f"degraded {a}<->{b}: "
                     + ",".join(f"{k}={v:g}" for k, v in sorted(args.items())))

    def _apply_load(self, ev: ScenarioEvent) -> None:
        name = node_name(ev.rank)
        factor = ev.arg_dict()["factor"]
        self.env.network.nodes[name].background_load = factor
        self._record(ev, True, f"background load {factor:g} on {name}")
