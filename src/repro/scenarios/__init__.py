"""Seeded fault-injection scenarios for live distributed solves.

``repro.scenarios`` turns the environment's fault-tolerance claims into
a fuzzable property: a :class:`ScenarioScript` — a pure function of a
seed — schedules peer crashes and checkpoint-recovered restarts, churn
(leave/join with re-partitioning), netem-style link degradation, and
heterogeneous compute rates against a real solve on the simulated
testbed; :func:`run_scenario` executes it and asserts the standing
invariants (no deadlock, verified and non-false STOP, envelope
monotonicity between fault epochs, baseline-matching tolerance).

CLI: ``python -m repro.experiments scenario --seed N``.
"""

from .engine import EpochOutcome, ScenarioResult, run_scenario
from .injector import AppliedEvent, Injector
from .invariants import (
    ENVELOPE_EPS,
    RESIDUAL_MARGIN,
    STOP_MARGIN,
    check_error_envelope,
    check_no_false_stop,
    check_tolerance_match,
    reference_solution,
)
from .script import (
    EVENT_KINDS,
    EXECUTORS,
    SCHEMES,
    ScenarioEvent,
    ScenarioScript,
    generate_script,
    node_name,
)

__all__ = [
    "ScenarioScript",
    "ScenarioEvent",
    "generate_script",
    "Injector",
    "AppliedEvent",
    "run_scenario",
    "ScenarioResult",
    "EpochOutcome",
    "reference_solution",
    "check_error_envelope",
    "check_no_false_stop",
    "check_tolerance_match",
    "ENVELOPE_EPS",
    "STOP_MARGIN",
    "RESIDUAL_MARGIN",
    "SCHEMES",
    "EXECUTORS",
    "EVENT_KINDS",
    "node_name",
]
