"""The campaign service daemon: an HTTP front door over a persistent
:class:`~repro.campaign.driver.DriverPool`.

The paper's P2PDC environment is a *service*: users submit obstacle
tasks to a long-lived peer network, they do not run one-shot scripts.
This module is that front door for the reproduction — a stdlib-only
(``http.server``/``socketserver``) threaded daemon that owns solver
resources for its whole lifetime and schedules work from many requests
over them:

- **Persistent resources.**  One :class:`~repro.campaign.ResultCache`
  and one driver pool live across requests; a second submission of a
  matrix the daemon has already solved never solves again.  The daemon
  executes nothing against the process-default
  :class:`~repro.resources.ResourceContext` — it owns a private context
  for the (rare) branches it serves in-process, and each driver worker
  owns its own, per the ownership rules in
  :mod:`repro.campaign.engine`.
- **Bounded admission queue.**  A submission is planned
  (:func:`~repro.campaign.jobs.plan_jobs` →
  :func:`~repro.campaign.engine.resolve_cache_keys` — the same static
  planning the engine uses, so daemon records are bit-identical to CLI
  campaign records) and its branches join one FIFO queue, bounded by
  ``max_queue``; past the bound the daemon answers 503 instead of
  buffering unboundedly.
- **Branch-level scheduling.**  The scheduler thread hands *branches*
  (whole warm-start chains — the engine's unit of driver work) to idle
  drivers in queue order, skipping over branches that are not ready,
  so a small campaign is never stuck behind a big one when a driver is
  free.
- **In-flight coalescing.**  Every branch's cache keys are known
  statically; the first branch to claim a key owns it, and any branch
  sharing a key with unfinished work defers instead of re-solving.
  When the owner completes, the deferred branch finds every entry in
  the daemon's cache and is served without touching a driver — a
  duplicate submission costs one cache sweep, not a solve.

Endpoints (see :mod:`repro.service.schema` for the wire format)::

    POST /campaigns                      submit a job matrix -> id
    GET  /campaigns/<id>                 queued/running/done per branch
    GET  /campaigns/<id>/results         records + provenance
    GET  /campaigns/<id>/iterates/<cache_key>.npy
                                         the solution iterate, bit-exact
    GET  /stats                          cache/pool/queue counters
    GET  /metrics                        Prometheus text exposition
    POST /shutdown                       drain accepted work, then exit

Telemetry registry ownership mirrors the resource-context rules: the
service's private context carries the registry for everything it does
in-process (scheduler counters, branch queue-wait histogram, inline
cache serves), the cache instance keeps its own private registry, and
each driver worker ships snapshots back piggybacked on branch
completions.  ``/metrics`` and :meth:`CampaignService.telemetry_snapshot`
merge all of them on demand — reading metrics never touches modeled
state, so a scraped daemon produces bit-identical records to an
unscraped one.
"""

from __future__ import annotations

import io
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

import numpy as np

from ..campaign.cache import ResultCache
from ..campaign.driver import DriverBranchError, DriverPool, cache_spec
from ..campaign.engine import (
    ExecutedJob,
    _execute_chunk,
    _release_leases,
    resolve_cache_keys,
    tasks_for,
)
from ..campaign.jobs import plan_jobs
from ..resources import ResourceContext
from .schema import SCHEMA_VERSION, SchemaError, Submission

__all__ = ["AdmissionError", "CampaignService", "ServiceDaemon"]

#: Request bodies past this size are refused before parsing.
MAX_BODY_BYTES = 8 * 1024 * 1024


class AdmissionError(Exception):
    """A submission the service cannot accept right now."""

    def __init__(self, message: str, *, code: str, status: int):
        super().__init__(message)
        self.code = code
        self.status = status

    def payload(self) -> dict[str, Any]:
        return {"error": {"code": self.code, "message": str(self)}}


class _Branch:
    """One schedulable unit: a whole warm-start chain of one campaign."""

    __slots__ = ("tasks", "status", "records", "driver", "error",
                 "owned_keys", "enqueued_at")

    def __init__(self, tasks: list):
        self.tasks = tasks
        self.status = "queued"  # queued | running | done | failed
        self.records: Optional[list[ExecutedJob]] = None
        self.driver: Optional[int] = None
        self.error: Optional[str] = None
        #: Cache keys this branch claimed at admission (first claimant
        #: wins); released when the branch leaves the running set.
        self.owned_keys: tuple[str, ...] = ()
        #: perf-counter stamp taken at admission; the queue-wait
        #: histogram observes dispatch_time - enqueued_at.
        self.enqueued_at: float = 0.0

    @property
    def cache_keys(self) -> list[str]:
        return [ckey for _job, ckey, _sig, _warm in self.tasks]


class _CampaignState:
    """Everything the daemon tracks about one submission."""

    def __init__(self, cid: str, submission: Submission, plan, ckeys,
                 signatures, branches: list[_Branch]):
        self.id = cid
        self.tag = submission.tag
        self.warm_start = submission.warm_start
        self.ladder = submission.ladder
        self.plan = plan
        self.ckeys = ckeys
        self.signatures = signatures
        self.branches = branches
        self.created = time.time()

    @property
    def status(self) -> str:
        states = {branch.status for branch in self.branches}
        if states == {"queued"}:
            return "queued"
        if "failed" in states:
            return "failed"
        if states == {"done"}:
            return "done"
        return "running"

    def records(self) -> list[ExecutedJob]:
        """One record per *submitted* job, in submission order (same
        duplicate-collapsing contract as ``Campaign.run``)."""
        import dataclasses

        by_key = {
            record.key: record
            for branch in self.branches
            for record in branch.records or []
        }
        records = []
        seen: set[str] = set()
        for job in self.plan.jobs:
            record = by_key[job.key()]
            if record.key in seen:
                record = dataclasses.replace(record, job=job,
                                             source="duplicate",
                                             wall_time=0.0)
            seen.add(record.key)
            records.append(record)
        return records


class CampaignService:
    """The daemon's state machine, independent of HTTP.

    ``drivers`` is the size of the persistent worker pool; ``cache``
    defaults to a private in-memory :class:`ResultCache` (pass a rooted
    one to share results with CLI campaigns and across restarts).
    ``autostart=False`` leaves the scheduler thread unstarted — tests
    use it to fill the admission queue deterministically, then
    :meth:`start`.
    """

    def __init__(self, *, cache: Optional[ResultCache] = None,
                 drivers: int = 1, max_queue: int = 64,
                 autostart: bool = True):
        if drivers < 1:
            raise ValueError(f"drivers must be >= 1, got {drivers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.cache = cache if cache is not None else ResultCache()
        self.drivers = int(drivers)
        self.max_queue = int(max_queue)
        self.started = time.time()
        # The daemon's own execution context, for branches it serves
        # in-process.  Never the process default: a service must be
        # embeddable next to unrelated solves without sharing pools.
        self._resources = ResourceContext(name="service")
        # Scheduler metrics live in the service context's registry (the
        # handles are resolved once; observing is a locked add).  These
        # are recorded unconditionally — per-branch frequency, not a
        # solver hot path.
        tele = self._resources.telemetry
        self._m_submissions = tele.counter("repro_service_submissions_total")
        self._m_inline = tele.counter(
            "repro_service_branches_total", mode="inline")
        self._m_dispatched = tele.counter(
            "repro_service_branches_total", mode="driver")
        self._m_failed = tele.counter("repro_service_branches_failed_total")
        self._m_queue_wait = tele.histogram(
            "repro_branch_queue_wait_seconds")
        self._leases: dict = {}
        self._pool: Optional[DriverPool] = None
        # Final driver telemetry, captured when the scheduler tears the
        # pool down, so /metrics after a drain still covers the workers.
        self._driver_telemetry: list = []
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._campaigns: dict[str, _CampaignState] = {}
        self._queue: list[tuple[str, int]] = []  # (cid, branch index)
        self._owner: dict[str, tuple[str, int]] = {}  # ckey -> owner
        self._tickets: dict[int, tuple[str, int]] = {}
        self._seq = 0
        self._draining = False
        self._drained = threading.Event()
        self._scheduler: Optional[threading.Thread] = None
        if autostart:
            self.start()

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Start the scheduler thread (idempotent)."""
        with self._lock:
            if self._scheduler is not None:
                return
            self._scheduler = threading.Thread(
                target=self._run_scheduler, name="campaign-scheduler",
                daemon=True,
            )
            self._scheduler.start()

    def drain(self) -> dict[str, Any]:
        """Stop admitting; finish everything accepted; then stop.

        Returns a snapshot of the work being drained.  Idempotent.
        """
        with self._wake:
            self._draining = True
            queued = len(self._queue)
            running = len(self._tickets)
            self._wake.notify_all()
        return {"draining": True, "queued_branches": queued,
                "running_branches": running}

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait until the drain completed (scheduler exited)."""
        if self._scheduler is None:
            # Never started: nothing will ever drain the queue.
            self._drained.set()
        return self._drained.wait(timeout)

    def close(self, timeout: float = 60.0) -> None:
        """Drain and wait; the hard stop for embedders and tests."""
        self.drain()
        self.start()  # a never-started service still needs its queue run
        if not self.join(timeout):
            raise RuntimeError("campaign service failed to drain in time")

    # -- admission ---------------------------------------------------------------

    def submit(self, submission: Submission) -> str:
        """Plan a submission and admit its branches; returns the id.

        Raises :class:`AdmissionError` when draining (409) or when the
        admission queue is full (503).
        """
        plan = plan_jobs(list(submission.jobs),
                         warm_start=submission.warm_start,
                         ladder=submission.ladder)
        ckeys, signatures = resolve_cache_keys(plan)
        branches = [
            _Branch(tasks_for(plan, jobs, ckeys, signatures))
            for jobs in plan.branches()
        ]
        with self._wake:
            if self._draining:
                raise AdmissionError(
                    "service is draining and no longer admits work",
                    code="draining", status=409)
            if len(self._queue) + len(branches) > self.max_queue:
                raise AdmissionError(
                    f"admission queue full ({len(self._queue)} of "
                    f"{self.max_queue} branches queued); retry later",
                    code="queue-full", status=503)
            self._seq += 1
            cid = f"c{self._seq:06d}"
            state = _CampaignState(cid, submission, plan, ckeys,
                                   signatures, branches)
            self._campaigns[cid] = state
            self._m_submissions.inc()
            now = time.perf_counter()
            for index, branch in enumerate(branches):
                branch.enqueued_at = now
                # First claimant owns a key; a branch sharing keys with
                # in-flight work defers at dispatch until the owner is
                # done, then is served from the cache.
                owned = []
                for ckey in branch.cache_keys:
                    if ckey not in self._owner:
                        self._owner[ckey] = (cid, index)
                        owned.append(ckey)
                branch.owned_keys = tuple(owned)
                self._queue.append((cid, index))
            self._wake.notify_all()
        return cid

    # -- scheduler ---------------------------------------------------------------

    def _branch_ready(self, cid: str, index: int) -> bool:
        """A branch may dispatch when no *other* unfinished branch owns
        any of its keys."""
        branch = self._campaigns[cid].branches[index]
        for ckey in branch.cache_keys:
            owner = self._owner.get(ckey)
            if owner is not None and owner != (cid, index):
                return False
        return True

    def _branch_cached(self, branch: _Branch) -> bool:
        """Whole branch resident in the daemon's own memory layer —
        serve it here instead of occupying a driver."""
        return all(self.cache.has_memory(ckey)
                   for ckey in branch.cache_keys)

    def _release(self, cid: str, index: int) -> None:
        branch = self._campaigns[cid].branches[index]
        for ckey in branch.owned_keys:
            if self._owner.get(ckey) == (cid, index):
                del self._owner[ckey]
        branch.owned_keys = ()

    def _finish(self, cid: str, index: int,
                records: list[ExecutedJob]) -> None:
        branch = self._campaigns[cid].branches[index]
        branch.records = records
        branch.status = "done"
        for record in records:
            # Re-member everything (the engine re-members only "run"):
            # deferred duplicates and restarts-over-a-warm-disk-cache
            # must find entries in the parent memory layer.
            self.cache._remember(record.cache_key, record.result)
        self._release(cid, index)

    def _fail(self, cid: str, index: int, error: str) -> None:
        branch = self._campaigns[cid].branches[index]
        branch.status = "failed"
        branch.error = error
        self._m_failed.inc()
        self._release(cid, index)

    def _dispatch_locked(self) -> None:
        """Move ready queue entries onto drivers (or serve them from
        cache in place).  Runs with the lock held."""
        remaining: list[tuple[str, int]] = []
        for cid, index in self._queue:
            branch = self._campaigns[cid].branches[index]
            if not self._branch_ready(cid, index):
                remaining.append((cid, index))
                continue
            if self._branch_cached(branch):
                self._m_queue_wait.observe(
                    time.perf_counter() - branch.enqueued_at)
                self._m_inline.inc()
                branch.status = "running"
                try:
                    records = _execute_chunk(
                        branch.tasks, cache=self.cache,
                        resources=self._resources, leases=self._leases,
                        keep_runners=True,
                    )
                except Exception as exc:  # pragma: no cover - cache rot
                    self._fail(cid, index, repr(exc))
                else:
                    self._finish(cid, index, records)
                continue
            pool = self._ensure_pool()
            if pool.idle == 0:
                remaining.append((cid, index))
                continue
            self._m_queue_wait.observe(
                time.perf_counter() - branch.enqueued_at)
            self._m_dispatched.inc()
            branch.status = "running"
            ticket = pool.submit(branch.tasks)
            branch.driver = self._active_driver_of(ticket)
            self._tickets[ticket] = (cid, index)
        self._queue = remaining

    def _active_driver_of(self, ticket: int) -> Optional[int]:
        for worker, active in self._pool._active.items():
            if active == ticket:
                return worker
        return None

    def _ensure_pool(self) -> DriverPool:
        if self._pool is None:
            self._pool = DriverPool(
                self.drivers, cache_spec=cache_spec(self.cache),
            )
        return self._pool

    def _run_scheduler(self) -> None:
        try:
            while True:
                with self._wake:
                    self._dispatch_locked()
                    if not self._tickets:
                        if self._draining and not self._queue:
                            break
                        self._wake.wait(timeout=0.1)
                        continue
                    pool = self._pool
                # Poll outside the lock: submissions and status reads
                # must not block on a branch in flight.
                try:
                    completions = pool.wait(timeout=0.05)
                except DriverBranchError as exc:
                    with self._wake:
                        cid, index = self._tickets.pop(exc.ticket)
                        self._fail(cid, index, str(exc))
                        self._wake.notify_all()
                    continue
                with self._wake:
                    for ticket, records in completions:
                        cid, index = self._tickets.pop(ticket)
                        self._finish(cid, index, records)
                    if completions:
                        self._wake.notify_all()
        except Exception as exc:  # pool death and other non-branch faults
            with self._wake:
                for ticket, (cid, index) in list(self._tickets.items()):
                    self._fail(cid, index, repr(exc))
                self._tickets.clear()
                for cid, index in self._queue:
                    self._fail(cid, index, f"scheduler stopped: {exc!r}")
                self._queue.clear()
                self._draining = True
        finally:
            with self._lock:
                pool, self._pool = self._pool, None
            if pool is not None:
                pool.close()
                with self._lock:
                    self._driver_telemetry = pool.telemetry_snapshots()
            _release_leases(self._leases, self._resources)
            self._drained.set()

    # -- views -------------------------------------------------------------------

    def _get(self, cid: str) -> _CampaignState:
        state = self._campaigns.get(cid)
        if state is None:
            raise KeyError(cid)
        return state

    def status(self, cid: str) -> dict[str, Any]:
        with self._lock:
            state = self._get(cid)
            positions = {entry: pos for pos, entry
                         in enumerate(self._queue)}
            branches = []
            done_jobs = 0
            for index, branch in enumerate(state.branches):
                if branch.status == "done":
                    done_jobs += len(branch.tasks)
                entry: dict[str, Any] = {
                    "index": index,
                    "status": branch.status,
                    "jobs": len(branch.tasks),
                    "cache_keys": branch.cache_keys,
                }
                position = positions.get((cid, index))
                if position is not None:
                    entry["queue_position"] = position
                if branch.driver is not None:
                    entry["driver"] = branch.driver
                if branch.error is not None:
                    entry["error"] = branch.error
                branches.append(entry)
            return {
                "version": SCHEMA_VERSION,
                "id": cid,
                "tag": state.tag,
                "status": state.status,
                "unique_jobs": len(state.plan.order),
                "submitted_jobs": len(state.plan.jobs),
                "done_jobs": done_jobs,
                "branches": branches,
            }

    def results(self, cid: str) -> dict[str, Any]:
        with self._lock:
            state = self._get(cid)
            status = state.status
            if status == "failed":
                errors = [b.error for b in state.branches if b.error]
                raise SchemaError(
                    "campaign failed: " + "; ".join(errors),
                    code="campaign-failed")
            if status != "done":
                raise SchemaError(
                    f"campaign {cid} is {status}; results exist once "
                    f"it is done", code="not-done")
            records = state.records()
        jobs = []
        for record in records:
            result = record.result
            row = result.row()
            row["source"] = record.source
            if record.warm_from is not None:
                row["warm_from"] = record.warm_from
            jobs.append({
                "key": record.key,
                "cache_key": record.cache_key,
                "label": record.job.label(),
                "job": record.job.to_wire(),
                "source": record.source,
                "warm_from": record.warm_from,
                "wall_time": record.wall_time,
                "row": row,
                "provenance": result.report.provenance,
                "iterate": f"/campaigns/{cid}/iterates/"
                           f"{record.cache_key}.npy",
            })
        sources = [record.source for record in records]
        return {
            "version": SCHEMA_VERSION,
            "id": cid,
            "tag": state.tag,
            "status": "done",
            "jobs": jobs,
            "summary": {
                "jobs": len(records),
                "solved": sources.count("run"),
                "cache_hits": sources.count("cache"),
                "duplicates": sources.count("duplicate"),
            },
        }

    def iterate_bytes(self, cid: str, ckey: str) -> bytes:
        """The solution iterate for one cache key, as ``.npy`` bytes —
        byte-identical to the entry a rooted cache writes on disk."""
        with self._lock:
            state = self._get(cid)
            record = None
            for branch in state.branches:
                for candidate in branch.records or []:
                    if candidate.cache_key == ckey:
                        record = candidate
                        break
            if record is None:
                raise KeyError(ckey)
        buffer = io.BytesIO()
        np.save(buffer, record.result.report.u)
        return buffer.getvalue()

    def stats(self) -> dict[str, Any]:
        """The ``GET /stats`` payload.  Schema (all keys always
        present)::

            version       wire schema version
            uptime_s      seconds since service construction
            draining      bool
            cache         registry-backed counters, aggregated over the
                          service's own cache instance plus the latest
                          snapshot of every driver worker: hits, misses,
                          stores, evictions, hit_rate,
                          lock_wait_seconds (flock contention)
            pool          drivers / busy / idle / branches_per_driver
            queue         depth / running / max, plus "wait" — the
                          branch queue-wait histogram summary
                          {count, sum, mean, buckets: {le: n}}
                          (admission -> dispatch latency)
            service       scheduler counters: submissions,
                          branches_inline (served from the daemon's
                          memory cache without a driver),
                          branches_driver, branches_failed
            campaigns     total + count per status
        """
        with self._lock:
            stats = self.cache.stats()
            pool = self._pool
            if pool is not None:
                for snapshot in pool.cache_stats():
                    if snapshot is None:
                        continue
                    for counter in ("hits", "misses", "stores",
                                    "evictions"):
                        stats[counter] += snapshot.get(counter, 0)
                    stats["lock_wait_seconds"] += snapshot.get(
                        "lock_wait_seconds", 0.0)
                utilization = pool.utilization()
            else:
                utilization = {
                    "drivers": self.drivers, "busy": 0,
                    "idle": 0, "branches_per_driver": [],
                }
            lookups = stats["hits"] + stats["misses"]
            stats["hit_rate"] = stats["hits"] / lookups if lookups else 0.0
            by_status: dict[str, int] = {}
            for state in self._campaigns.values():
                by_status[state.status] = by_status.get(state.status, 0) + 1
            return {
                "version": SCHEMA_VERSION,
                "uptime_s": time.time() - self.started,
                "draining": self._draining,
                "cache": stats,
                "pool": utilization,
                "queue": {
                    "depth": len(self._queue),
                    "running": len(self._tickets),
                    "max": self.max_queue,
                    "wait": self._m_queue_wait.summary(),
                },
                "service": {
                    "submissions": int(self._m_submissions.value),
                    "branches_inline": int(self._m_inline.value),
                    "branches_driver": int(self._m_dispatched.value),
                    "branches_failed": int(self._m_failed.value),
                },
                "campaigns": {"total": len(self._campaigns), **by_status},
            }

    def telemetry_snapshot(self) -> dict:
        """One mergeable snapshot across every registry the service can
        see: its own context (scheduler + inline execution), its cache
        instance, and the latest piggybacked snapshot of each driver
        worker (final close-handshake snapshots after a drain)."""
        from ..telemetry import merge_snapshots

        with self._lock:
            parts = [self._resources.telemetry.snapshot(),
                     self.cache.telemetry_snapshot()]
            if self._pool is not None:
                driver_snaps = self._pool.telemetry_snapshots()
            else:
                driver_snaps = self._driver_telemetry
            parts.extend(s for s in driver_snaps if s is not None)
        return merge_snapshots(*parts)


# -- HTTP layer ---------------------------------------------------------------------


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, service: CampaignService,
                 quiet: bool):
        self.service = service
        self.quiet = quiet
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-campaign-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> CampaignService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        if not self.server.quiet:  # pragma: no cover - log plumbing
            super().log_message(format, *args)

    # A poller that hangs up mid-response must not take its handler
    # thread down with a stack trace; the next request gets a fresh
    # thread either way.
    def handle_one_request(self):
        try:
            super().handle_one_request()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _send_json(self, status: int, payload: dict,
                   extra_headers: Optional[dict] = None) -> None:
        body = json.dumps(payload, indent=1).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str,
                         message: str) -> None:
        self._send_json(status,
                        {"error": {"code": code, "message": message}})

    def _read_body(self) -> Any:
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise SchemaError("missing or invalid Content-Length",
                              code="bad-length") from None
        if length > MAX_BODY_BYTES:
            raise SchemaError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit", code="body-too-large")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"request body is not valid JSON: {exc}",
                              code="bad-json") from None

    def do_POST(self) -> None:
        try:
            if self.path == "/campaigns":
                from .schema import submission_from_wire

                submission = submission_from_wire(self._read_body())
                cid = self.service.submit(submission)
                self._send_json(202, {
                    "version": SCHEMA_VERSION,
                    "id": cid,
                    "status_url": f"/campaigns/{cid}",
                    "results_url": f"/campaigns/{cid}/results",
                })
            elif self.path == "/shutdown":
                snapshot = self.service.drain()
                self._send_json(200, snapshot)
                self.server.begin_shutdown()
            else:
                self._send_error_json(404, "not-found",
                                      f"no such endpoint {self.path!r}")
        except SchemaError as exc:
            self._send_json(400, exc.payload())
        except AdmissionError as exc:
            self._send_json(exc.status, exc.payload())
        except Exception as exc:  # pragma: no cover - defensive 500
            self._send_error_json(500, "internal", repr(exc))

    def do_GET(self) -> None:
        try:
            parts = [p for p in self.path.split("/") if p]
            if parts == ["stats"]:
                self._send_json(200, self.service.stats())
            elif parts == ["metrics"]:
                from ..telemetry import CONTENT_TYPE, render_prometheus

                body = render_prometheus(
                    self.service.telemetry_snapshot()).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            elif parts == ["healthz"]:
                self._send_json(200, {"ok": True})
            elif len(parts) >= 2 and parts[0] == "campaigns":
                self._get_campaign(parts[1:])
            else:
                self._send_error_json(404, "not-found",
                                      f"no such endpoint {self.path!r}")
        except KeyError as exc:
            self._send_error_json(404, "not-found",
                                  f"unknown resource {exc.args[0]!r}")
        except SchemaError as exc:
            status = 409 if exc.code in ("not-done",
                                         "campaign-failed") else 400
            self._send_json(status, exc.payload())
        except Exception as exc:  # pragma: no cover - defensive 500
            self._send_error_json(500, "internal", repr(exc))

    def _get_campaign(self, parts: list[str]) -> None:
        cid = parts[0]
        if len(parts) == 1:
            self._send_json(200, self.service.status(cid))
        elif parts[1:] == ["results"]:
            self._send_json(200, self.service.results(cid))
        elif len(parts) == 3 and parts[1] == "iterates" \
                and parts[2].endswith(".npy"):
            body = self.service.iterate_bytes(cid, parts[2][:-4])
            self.send_response(200)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_error_json(
                404, "not-found",
                f"no such campaign resource {'/'.join(parts[1:])!r}")

    def do_PUT(self) -> None:
        self._send_error_json(405, "method-not-allowed",
                              "only GET and POST are supported")

    do_DELETE = do_PUT


class ServiceDaemon:
    """The HTTP server around a :class:`CampaignService`.

    ``port=0`` binds an ephemeral port; read the real one from
    :attr:`address` (or pass ``port_file`` to have it written out for
    shell scripts).  ``serve_forever`` blocks until a ``/shutdown``
    drain completes; tests use :meth:`start` / :meth:`stop` threads.
    """

    def __init__(self, service: CampaignService, *,
                 host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True):
        self.service = service
        self.httpd = _ServiceHTTPServer((host, port), _Handler, service,
                                        quiet)
        self.httpd.begin_shutdown = self._begin_shutdown
        self._shutdown_started = False
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _begin_shutdown(self) -> None:
        """Called by the /shutdown handler *after* its response is
        queued: wait out the drain off-thread, then stop accepting."""
        with self._lock:
            if self._shutdown_started:
                return
            self._shutdown_started = True
        threading.Thread(target=self._drain_then_stop,
                         name="campaign-service-shutdown",
                         daemon=True).start()

    def _drain_then_stop(self) -> None:
        self.service.start()  # a paused service must still drain
        self.service.join()
        self.httpd.shutdown()

    def serve_forever(self) -> None:
        """Serve until a drain completes; returns fully cleaned up."""
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self.httpd.server_close()

    def start(self) -> "ServiceDaemon":
        """Serve on a background thread (tests / embedding)."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="campaign-service-http",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 60.0) -> None:
        """Drain and stop from the embedding side (idempotent)."""
        self.service.drain()
        self._begin_shutdown()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():  # pragma: no cover - hung drain
                raise RuntimeError("service daemon failed to stop in time")
            self._thread = None
