"""Campaign service: a long-lived solve daemon with an HTTP front door.

The pieces, bottom up:

- :mod:`repro.service.schema` — the versioned wire format: a submission
  is a list of :class:`~repro.campaign.jobs.CampaignJob` wire dicts
  (exact-float encoded, so cache keys survive the wire).
- :mod:`repro.service.daemon` — :class:`CampaignService` (persistent
  cache + driver pool, bounded admission queue, branch scheduling with
  in-flight coalescing) and :class:`ServiceDaemon` (the stdlib HTTP
  server around it).
- :mod:`repro.service.client` — :class:`ServiceClient`, the urllib
  client the ``submit`` CLI subcommand and the CI smoke job use.

Start one with ``python -m repro.experiments serve``; talk to it with
``python -m repro.experiments submit`` or any HTTP client.
"""

from .client import ServiceClient, ServiceError
from .daemon import AdmissionError, CampaignService, ServiceDaemon
from .schema import (
    MAX_JOBS,
    SCHEMA_VERSION,
    SchemaError,
    Submission,
    submission_from_wire,
    submission_to_wire,
)

__all__ = [
    "AdmissionError",
    "CampaignService",
    "MAX_JOBS",
    "SCHEMA_VERSION",
    "SchemaError",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "Submission",
    "submission_from_wire",
    "submission_to_wire",
]
