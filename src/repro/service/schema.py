"""Wire schema of the campaign service: one canonical request type.

The repo grew three ways to describe a solve job — ``run_configuration``
kwargs, :class:`~repro.campaign.jobs.CampaignJob`, and CLI flags.  The
HTTP API deliberately does **not** add a fourth: a submission body is a
versioned envelope around a list of ``CampaignJob`` wire dicts
(:meth:`CampaignJob.to_wire` — exact-float ``float.hex`` encoding, so a
job's signature and cache key are bit-identical on both sides of the
wire), and every front end normalizes into that one type before
anything executes.

Envelope (``POST /campaigns``)::

    {
      "version": 1,
      "jobs": [ {<CampaignJob.to_wire()>}, ... ],   # 1..MAX_JOBS
      "warm_start": false,                          # optional
      "ladder": false,                              # optional
      "tag": "fig5-sweep"                           # optional, <= 120 chars
    }

Errors raise :class:`SchemaError`, which carries a structured payload
(``code`` / ``message`` / optional ``field``) the daemon returns as the
JSON error body instead of a stack trace.  Decoding also enforces the
per-dtype termination-tolerance floor: a job whose ``tol`` its dtype
cannot resolve is a 400 with ``field="tolerance"``, not a 500 from the
solver three layers down.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Mapping, Optional

from ..campaign.jobs import CampaignJob, WireError
from ..numerics.tolerances import ToleranceFloorError, check_termination_tol

__all__ = [
    "MAX_JOBS",
    "SCHEMA_VERSION",
    "SchemaError",
    "Submission",
    "submission_from_wire",
    "submission_to_wire",
]

#: Version of the submission envelope (the job dicts inside carry their
#: own ``version`` — :data:`~repro.campaign.jobs.JOB_WIRE_VERSION`).
SCHEMA_VERSION = 1

#: Upper bound on jobs per submission; a matrix bigger than this is a
#: client mistake, not a workload.
MAX_JOBS = 1024

_MAX_TAG_CHARS = 120


class SchemaError(Exception):
    """A request body the service refuses, as structured data."""

    def __init__(self, message: str, *, code: str = "bad-request",
                 field: Optional[str] = None):
        super().__init__(message)
        self.code = code
        self.field = field

    def payload(self) -> dict[str, Any]:
        error: dict[str, Any] = {"code": self.code, "message": str(self)}
        if self.field is not None:
            error["field"] = self.field
        return {"error": error}


@dataclasses.dataclass(frozen=True)
class Submission:
    """One decoded job-matrix submission."""

    jobs: tuple[CampaignJob, ...]
    warm_start: bool = False
    ladder: bool = False
    tag: Optional[str] = None


def submission_to_wire(jobs: Iterable[CampaignJob],
                       warm_start: bool = False,
                       tag: Optional[str] = None,
                       ladder: bool = False) -> dict[str, Any]:
    """Encode a job list as a ``POST /campaigns`` body."""
    wire: dict[str, Any] = {
        "version": SCHEMA_VERSION,
        "jobs": [job.to_wire() for job in jobs],
    }
    if warm_start:
        wire["warm_start"] = True
    if ladder:
        wire["ladder"] = True
    if tag is not None:
        wire["tag"] = tag
    return wire


def submission_from_wire(payload: Any) -> Submission:
    """Decode and strictly validate a submission body."""
    if not isinstance(payload, Mapping):
        raise SchemaError(
            f"submission must be a JSON object, got "
            f"{type(payload).__name__}", code="bad-body")
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema version {version!r} (this service "
            f"speaks {SCHEMA_VERSION})", code="bad-version",
            field="version")
    unknown = set(payload) - {"version", "jobs", "warm_start", "ladder",
                              "tag"}
    if unknown:
        raise SchemaError(f"unknown field(s) {sorted(unknown)}",
                          field=sorted(unknown)[0])
    jobs_wire = payload.get("jobs")
    if not isinstance(jobs_wire, list) or not jobs_wire:
        raise SchemaError("'jobs' must be a non-empty list",
                          field="jobs")
    if len(jobs_wire) > MAX_JOBS:
        raise SchemaError(
            f"{len(jobs_wire)} jobs exceeds the per-submission limit "
            f"of {MAX_JOBS}", code="too-many-jobs", field="jobs")
    jobs = []
    for i, wire in enumerate(jobs_wire):
        try:
            jobs.append(CampaignJob.from_wire(wire))
        except WireError as exc:
            where = f"jobs[{i}]"
            if exc.field is not None:
                where += f".{exc.field}"
            raise SchemaError(f"{where}: {exc}", code="bad-job",
                              field=where) from None
        try:
            check_termination_tol(jobs[-1].tol, jobs[-1].dtype)
        except ToleranceFloorError as exc:
            raise SchemaError(f"jobs[{i}]: {exc}", code="bad-job",
                              field="tolerance") from None
    warm_start = payload.get("warm_start", False)
    if not isinstance(warm_start, bool):
        raise SchemaError(
            f"'warm_start' must be a boolean, got {warm_start!r}",
            field="warm_start")
    ladder = payload.get("ladder", False)
    if not isinstance(ladder, bool):
        raise SchemaError(
            f"'ladder' must be a boolean, got {ladder!r}",
            field="ladder")
    tag = payload.get("tag")
    if tag is not None and (not isinstance(tag, str)
                            or len(tag) > _MAX_TAG_CHARS):
        raise SchemaError(
            f"'tag' must be a string of at most {_MAX_TAG_CHARS} "
            f"characters", field="tag")
    return Submission(jobs=tuple(jobs), warm_start=warm_start,
                      ladder=ladder, tag=tag)
