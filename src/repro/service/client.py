"""A stdlib HTTP client for the campaign service daemon.

Thin by design: :class:`ServiceClient` speaks exactly the wire schema
of :mod:`repro.service.schema` over ``urllib.request``, decodes
structured error bodies into :class:`ServiceError`, and adds the one
convenience a shell pipeline needs — :meth:`wait`, a poll loop over
``GET /campaigns/<id>`` that returns the final status document.

Everything a submission needs for bit-identical results travels inside
the :class:`~repro.campaign.jobs.CampaignJob` wire dicts; the client
adds no parameters of its own.
"""

from __future__ import annotations

import io
import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterable, Optional

from ..campaign.jobs import CampaignJob
from .schema import submission_to_wire

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx answer from the daemon, with its structured body.

    ``status`` is the HTTP status; ``code`` and ``payload`` carry the
    service's JSON error envelope when one was returned (plain-text
    bodies from middle boxes decode to ``code="http-error"``).
    """

    def __init__(self, message: str, *, status: int,
                 payload: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}

    @property
    def code(self) -> str:
        return self.payload.get("error", {}).get("code", "http-error")


class ServiceClient:
    """Client for one daemon at ``base_url`` (e.g. a
    :attr:`~repro.service.daemon.ServiceDaemon.url`)."""

    def __init__(self, base_url: str, *, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> Any:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                raw = response.read()
                content_type = response.headers.get_content_type()
                if content_type == "application/octet-stream":
                    return raw
                if content_type == "text/plain":  # /metrics exposition
                    return raw.decode("utf-8")
                return json.loads(raw)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw)
            except (ValueError, UnicodeDecodeError):
                payload = {}
            message = payload.get("error", {}).get(
                "message", raw.decode(errors="replace") or str(exc))
            raise ServiceError(
                f"{method} {path} -> {exc.code}: {message}",
                status=exc.code, payload=payload,
            ) from None
        except urllib.error.URLError as exc:
            # Connection-level failure (daemon down, refused, DNS):
            # status 0, no payload.
            raise ServiceError(
                f"{method} {path} -> {exc.reason}", status=0,
            ) from None

    # -- endpoints ---------------------------------------------------------------

    def submit(self, jobs: Iterable[CampaignJob], *,
               warm_start: bool = False,
               ladder: bool = False,
               tag: Optional[str] = None) -> str:
        """``POST /campaigns``; returns the campaign id."""
        wire = submission_to_wire(jobs, warm_start=warm_start, tag=tag,
                                  ladder=ladder)
        return self._request("POST", "/campaigns", wire)["id"]

    def status(self, cid: str) -> dict:
        """``GET /campaigns/<id>``."""
        return self._request("GET", f"/campaigns/{cid}")

    def results(self, cid: str) -> dict:
        """``GET /campaigns/<id>/results`` (409 until done)."""
        return self._request("GET", f"/campaigns/{cid}/results")

    def iterate(self, cid: str, cache_key: str):
        """Fetch one solution iterate as an ndarray, bit-exact."""
        import numpy as np

        raw = self._request(
            "GET", f"/campaigns/{cid}/iterates/{cache_key}.npy")
        return np.load(io.BytesIO(raw), allow_pickle=False)

    def stats(self) -> dict:
        """``GET /stats``."""
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """``GET /metrics``: the Prometheus text exposition."""
        return self._request("GET", "/metrics")

    def shutdown(self) -> dict:
        """``POST /shutdown``: ask the daemon to drain and exit."""
        return self._request("POST", "/shutdown")

    def wait(self, cid: str, *, timeout: float = 600.0,
             poll: float = 0.2) -> dict:
        """Poll until the campaign leaves queued/running; returns the
        final status document (``status`` is ``done`` or ``failed``)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(cid)
            if status["status"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {cid} still {status['status']} after "
                    f"{timeout:.0f}s")
            time.sleep(poll)
