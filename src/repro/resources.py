"""Explicit resource contexts for the solver/runner/campaign stack.

Everything that used to be a process-global singleton — the sweep
workspace pool hook (:mod:`repro.numerics.kernels`), the slab-autotune
verdict, the per-kind problem cache
(:mod:`repro.solvers.distributed_richardson`), and the shared-runner
registry (:mod:`repro.parallel.runner`) — now lives in an instantiable
:class:`ResourceContext`.  One context per owner: a plain solve uses the
process-wide default context (so every pre-existing call site behaves
exactly as before), a :class:`~repro.campaign.engine.Campaign` owns a
private context, and each campaign driver process builds its own at
startup.

Two rules keep this honest:

- **Contexts never share mutable resource state.**  A workspace pool, a
  runner lease, or a cached problem acquired through one context is
  invisible to every other context, so two campaigns can run
  concurrently in one process without stepping on each other.
- **The context rides the call, never the params.**  Simulated task
  params are wire payload (their size feeds the network model), so the
  context is threaded out-of-band: ``run_configuration(resources=...)``
  → ``P2PDC`` → ``TaskExecutor`` → ``TaskContext.resources`` → the
  block solver.

Passing ``resources=None`` anywhere means "use the default context" —
the thin module-level wrappers in the kernels/runner/solver modules all
resolve through :func:`resolve_context`.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.telemetry import Telemetry

__all__ = ["ResourceContext", "default_context", "resolve_context"]


class ResourceContext:
    """One owner's worth of pooled solver resources.

    Slots (all lazily populated by the layers that use them):

    ``workspace_pool``
        The duck-typed sweep-workspace pool consulted by
        :func:`repro.numerics.kernels.checkout_workspace`, or ``None``
        for construct-on-demand.
    ``slab_bytes``
        The cached slab-autotune verdict
        (:func:`repro.numerics.kernels.autotune_slab_bytes`), or
        ``None`` for not-yet-measured.
    ``problem_cache``
        Bounded ``(kind, n) -> ObstacleProblem`` LRU used by
        :func:`repro.solvers.distributed_richardson.get_problem`.
    ``runner_lock`` / ``runners`` / ``runner_keys``
        The refcounted shared-runner registry behind
        :func:`repro.parallel.runner.acquire_shared_runner` — key →
        ``[runner, refcount]`` plus the reverse ``id(runner) -> key``
        map.
    ``telemetry``
        The owner's :class:`repro.telemetry.Telemetry` (metrics registry
        + span buffer).  Same ownership rule as the pools: handles never
        cross process boundaries — worker processes reset theirs at
        startup and ship snapshots back for the parent to merge.
    """

    def __init__(self, name: str = "context") -> None:
        self.name = str(name)
        self.workspace_pool = None
        self.slab_bytes: Optional[int] = None
        self.problem_cache: dict = {}
        self.runner_lock = threading.Lock()
        self.runners: dict = {}
        self.runner_keys: dict = {}
        self.telemetry = Telemetry(name=f"{self.name}-telemetry")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResourceContext({self.name!r}, "
                f"pool={self.workspace_pool is not None}, "
                f"slab={self.slab_bytes}, "
                f"problems={len(self.problem_cache)}, "
                f"runners={len(self.runners)})")


#: The process-wide context every ``resources=None`` call site resolves
#: to.  Pre-context code (and worker processes that never build their
#: own) runs entirely against this one, bit-identically to the old
#: module-global behaviour.
_DEFAULT = ResourceContext(name="default")


def default_context() -> ResourceContext:
    """The process-wide default :class:`ResourceContext`."""
    return _DEFAULT


def resolve_context(resources: Optional[ResourceContext]) -> ResourceContext:
    """``resources`` itself, or the default context when ``None``."""
    return resources if resources is not None else _DEFAULT
