"""Deterministic trace-replay for asynchronous stepping.

Asynchronous and hybrid projected-Richardson schemes are
*order-sensitive*: the iterate a peer produces depends on exactly which
(possibly delayed) neighbour planes sat in its ghosts when its sweep
ran.  Proving that the process executor is faithful to the inline one
therefore needs more than final-answer comparison — it needs the two
engines driven through the *same schedule* and compared iterate for
iterate.  This module provides that layer:

:class:`TraceRecorder` / :func:`record_schedule`
    record the (peer, iteration, ghost-exchange) schedule of a live DES
    solve — the solver calls the hooks when a recorder is active — as a
    :class:`ScheduleTrace`: per-peer initial snapshots plus the global
    event sequence in driver order (which *is* the DES order; the kernel
    is deterministic).

:func:`replay_trace`
    re-execute a recorded schedule directly against per-peer
    :class:`~repro.solvers.halo.BlockState` objects, on either sweep
    engine, asserting nothing itself but returning every per-sweep diff
    (and optionally every post-sweep iterate) so tests can compare
    engine against engine and replay against recording, bit for bit.

:class:`ScheduleHarness` / :func:`random_schedule`
    the schedule-fuzz layer: drive the same per-peer states through
    *synthetic* schedules — arbitrary interleavings of split-phase
    sweeps and boundary exchanges, valid by construction — to check the
    invariants that must hold under **any** ordering (the asynchronous
    convergence theory of the paper's eq. (5)): the sup-norm error
    envelope never grows, convergence is reached from any schedule
    prefix, and the split-phase state machine neither deadlocks nor
    permits a consistency-violating access (those raise instead).
"""

from __future__ import annotations

import contextlib
import dataclasses
import random
from typing import Any, Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "TraceEvent",
    "PeerSnapshot",
    "ScheduleTrace",
    "TraceRecorder",
    "record_schedule",
    "active_recorder",
    "replay_trace",
    "ReplayResult",
    "traces_equal",
    "assert_traces_equal",
    "ScheduleHarness",
    "random_schedule",
]


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One step of a recorded schedule.

    ``kind`` is one of:

    - ``"begin"`` — peer ``rank`` dispatched sweep ``iteration``;
    - ``"end"`` — that sweep was collected, yielding ``diff``;
    - ``"ghost"`` — a neighbour plane (sent at the neighbour's
      ``src_iteration`` — possibly a delayed iterate, eq. (5)) was
      written into ``rank``'s ``side`` ("below"/"above") ghost; the
      plane bytes ride along so replay is closed under staleness;
    - ``"stop"`` — peer ``rank`` observed STOP after ``iteration``
      sweeps (metadata only; replay ignores it);
    - ``"restore"`` — peer ``rank`` crashed and came back from a
      checkpoint: ``state`` holds the restored block and ghost planes,
      ``iteration`` the resumed sweep counter.  Replay aborts whatever
      the rank had in flight and installs the restored state, exactly
      as the live crash path does.
    """

    kind: str
    rank: int
    iteration: int
    side: Optional[str] = None
    plane: Optional[np.ndarray] = None
    diff: Optional[float] = None
    src_iteration: Optional[int] = None
    #: "restore" only: {"block", "ghost_below", "ghost_above"} copies.
    state: Optional[dict] = None


@dataclasses.dataclass(frozen=True)
class PeerSnapshot:
    """A peer's starting state: its block and both ghost planes."""

    rank: int
    lo: int
    hi: int
    block: np.ndarray
    ghost_below: Optional[np.ndarray]
    ghost_above: Optional[np.ndarray]


@dataclasses.dataclass
class ScheduleTrace:
    """The recorded schedule of one distributed solve."""

    solve: dict[str, Any]
    peers: dict[int, PeerSnapshot] = dataclasses.field(default_factory=dict)
    events: list[TraceEvent] = dataclasses.field(default_factory=list)

    @property
    def n_sweeps(self) -> int:
        return sum(1 for ev in self.events if ev.kind == "end")

    def ranges(self) -> list[tuple[int, int]]:
        """The plane partition, ascending (what a runner is keyed by)."""
        return [(p.lo, p.hi)
                for p in sorted(self.peers.values(), key=lambda p: p.lo)]


def _plane_equal(a: Optional[np.ndarray], b: Optional[np.ndarray]) -> bool:
    if a is None or b is None:
        return (a is None) == (b is None)
    return a.dtype == b.dtype and np.array_equal(a, b)


def traces_equal(a: ScheduleTrace, b: ScheduleTrace) -> bool:
    """Bitwise schedule equality (metadata, snapshots, every event)."""
    return _trace_mismatch(a, b) is None


def _trace_mismatch(a: ScheduleTrace, b: ScheduleTrace) -> Optional[str]:
    if a.solve != b.solve:
        return f"solve metadata differs: {a.solve} != {b.solve}"
    if sorted(a.peers) != sorted(b.peers):
        return f"peer ranks differ: {sorted(a.peers)} != {sorted(b.peers)}"
    for rank in a.peers:
        pa, pb = a.peers[rank], b.peers[rank]
        if (pa.lo, pa.hi) != (pb.lo, pb.hi):
            return f"peer {rank} range differs"
        if not _plane_equal(pa.block, pb.block):
            return f"peer {rank} initial block differs"
        if not (_plane_equal(pa.ghost_below, pb.ghost_below)
                and _plane_equal(pa.ghost_above, pb.ghost_above)):
            return f"peer {rank} initial ghosts differ"
    if len(a.events) != len(b.events):
        return f"event counts differ: {len(a.events)} != {len(b.events)}"
    for i, (ea, eb) in enumerate(zip(a.events, b.events)):
        if (ea.kind, ea.rank, ea.iteration, ea.side, ea.src_iteration) != \
                (eb.kind, eb.rank, eb.iteration, eb.side, eb.src_iteration):
            return f"event {i} differs: {ea} != {eb}"
        if ea.diff != eb.diff:
            return (f"event {i} diff differs: {ea.diff!r} != {eb.diff!r} "
                    f"({ea.kind} rank {ea.rank} it {ea.iteration})")
        if not _plane_equal(ea.plane, eb.plane):
            return f"event {i} ghost plane bytes differ"
        if (ea.state is None) != (eb.state is None):
            return f"event {i} restore state presence differs"
        if ea.state is not None:
            for key in ("block", "ghost_below", "ghost_above"):
                if not _plane_equal(ea.state.get(key), eb.state.get(key)):
                    return f"event {i} restore state {key!r} differs"
    return None


def assert_traces_equal(a: ScheduleTrace, b: ScheduleTrace) -> None:
    """Raise AssertionError naming the first divergence, if any."""
    mismatch = _trace_mismatch(a, b)
    assert mismatch is None, mismatch


class TraceRecorder:
    """Collects :class:`ScheduleTrace` s from live solver runs.

    One recorder can span several sequential solves (a whole campaign):
    a rank re-registering starts a new trace, so ``traces[k]`` is the
    k-th solve executed while the recorder was active.  ``trace`` is
    the single-solve convenience accessor.
    """

    def __init__(self) -> None:
        self.traces: list[ScheduleTrace] = []
        self._current: Optional[ScheduleTrace] = None

    @property
    def trace(self) -> ScheduleTrace:
        if len(self.all_traces()) != 1:
            raise ValueError(
                f"recorder holds {len(self.all_traces())} traces; use "
                ".traces / .all_traces() for multi-solve recordings"
            )
        return self.all_traces()[0]

    def all_traces(self) -> list[ScheduleTrace]:
        out = list(self.traces)
        if self._current is not None:
            out.append(self._current)
        return out

    # -- solver-facing hooks ------------------------------------------------------

    def register_peer(self, rank: int, lo: int, hi: int,
                      block: np.ndarray,
                      ghost_below: Optional[np.ndarray],
                      ghost_above: Optional[np.ndarray],
                      solve: dict[str, Any]) -> None:
        cur = self._current
        if cur is None or rank in cur.peers:
            if cur is not None:
                self.traces.append(cur)
            cur = self._current = ScheduleTrace(solve=dict(solve))
        elif cur.solve != solve:
            raise ValueError(
                f"peer {rank} registered inconsistent solve metadata: "
                f"{solve} != {cur.solve}"
            )
        cur.peers[rank] = PeerSnapshot(
            rank=rank, lo=lo, hi=hi,
            block=np.array(block, copy=True),
            ghost_below=None if ghost_below is None
            else np.array(ghost_below, copy=True),
            ghost_above=None if ghost_above is None
            else np.array(ghost_above, copy=True),
        )

    def _events(self) -> list[TraceEvent]:
        if self._current is None:
            raise RuntimeError("no peer registered yet; nothing to record")
        return self._current.events

    def sweep_begin(self, rank: int, iteration: int) -> None:
        self._events().append(TraceEvent("begin", rank, iteration))

    def sweep_end(self, rank: int, iteration: int, diff: float) -> None:
        self._events().append(TraceEvent("end", rank, iteration, diff=diff))

    def ghost(self, rank: int, side: str, plane: np.ndarray,
              src_iteration: int) -> None:
        self._events().append(TraceEvent(
            "ghost", rank, 0, side=side,
            plane=np.array(plane, copy=True), src_iteration=src_iteration,
        ))

    def stop(self, rank: int, iteration: int) -> None:
        self._events().append(TraceEvent("stop", rank, iteration))

    def has_peer(self, rank: int) -> bool:
        """True if ``rank`` is registered in the trace being recorded —
        how a restarted solver knows to record a restore instead of
        opening a new trace."""
        return self._current is not None and rank in self._current.peers

    def restore(self, rank: int, iteration: int, block: np.ndarray,
                ghost_below: Optional[np.ndarray],
                ghost_above: Optional[np.ndarray]) -> None:
        if not self.has_peer(rank):
            raise RuntimeError(f"restore for unregistered peer {rank}")
        self._events().append(TraceEvent(
            "restore", rank, iteration,
            state={
                "block": np.array(block, copy=True),
                "ghost_below": None if ghost_below is None
                else np.array(ghost_below, copy=True),
                "ghost_above": None if ghost_above is None
                else np.array(ghost_above, copy=True),
            },
        ))


_active: Optional[TraceRecorder] = None


def active_recorder() -> Optional[TraceRecorder]:
    """The recorder the solver should report to, if any."""
    return _active


@contextlib.contextmanager
def record_schedule():
    """Record every solve executed in the ``with`` body.

    >>> with record_schedule() as rec:
    ...     run_configuration(...)          # doctest: +SKIP
    >>> trace = rec.trace

    Nesting restores the outer recorder on exit (the inner one then
    holds only the inner runs).
    """
    global _active
    rec = TraceRecorder()
    prev, _active = _active, rec
    try:
        yield rec
    finally:
        _active = prev


# -- replay --------------------------------------------------------------------


@dataclasses.dataclass
class ReplayResult:
    """What a replay produced, aligned with the trace's "end" events."""

    #: (rank, iteration, diff) per collected sweep, in schedule order.
    diffs: list[tuple[int, int, float]]
    #: Final per-peer blocks (private copies).
    blocks: dict[int, np.ndarray]
    #: Post-sweep iterate copies, one per "end" event (only when the
    #: replay ran with ``capture_iterates=True``).
    iterates: Optional[list[np.ndarray]] = None

    def gather(self, ranges: Sequence[tuple[int, int]]) -> np.ndarray:
        """Assemble the full iterate from the per-peer blocks."""
        n = max(hi for _lo, hi in ranges)
        some = next(iter(self.blocks.values()))
        u = np.empty((n, some.shape[1], some.shape[2]), dtype=some.dtype)
        for rank, (lo, hi) in enumerate(sorted(ranges)):
            u[lo:hi] = self.blocks[rank]
        return u


def _build_states(problem_kind: str, n: int,
                  peers: Iterable[PeerSnapshot], delta: float,
                  dtype, local_sweep: str, executor: str,
                  n_workers: Optional[int], start_method: Optional[str]):
    """Per-peer BlockStates (+ the runner for the process engine),
    seeded from the snapshots."""
    from ..solvers.distributed_richardson import get_problem
    from ..solvers.halo import BlockState
    from .runner import ParallelBlockRunner

    peers = sorted(peers, key=lambda p: p.lo)
    problem = get_problem(problem_kind, n)
    runner = None
    if executor == "process":
        runner = ParallelBlockRunner(
            problem_kind, n, ranges=[(p.lo, p.hi) for p in peers],
            delta=delta, dtype=dtype, n_workers=n_workers,
            start_method=start_method,
        )
    states = {}
    try:
        for snap in peers:
            st = BlockState(
                problem=problem, lo=snap.lo, hi=snap.hi, delta=delta,
                dtype=dtype, local_sweep=local_sweep, executor=executor,
                runner=runner,
            )
            st.warm_start(snap.block)
            if st.ghost_below is not None and snap.ghost_below is not None:
                st.update_ghost_below(snap.ghost_below)
            if st.ghost_above is not None and snap.ghost_above is not None:
                st.update_ghost_above(snap.ghost_above)
            states[snap.rank] = st
    except BaseException:
        for st in states.values():
            st.release()
        if runner is not None:
            runner.close(discard_pending=True)
        raise
    return states, runner


def replay_trace(trace: ScheduleTrace, executor: str = "inline",
                 capture_iterates: bool = False,
                 n_workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 on_event=None) -> ReplayResult:
    """Re-execute a recorded schedule on the chosen sweep engine.

    Walks the event list exactly as recorded: "begin" dispatches the
    peer's split-phase sweep, "end" collects it, "ghost" installs the
    recorded plane bytes (so staleness — a delayed u^{ρ(p)} — is
    reproduced exactly, independent of what the replay's neighbours
    hold).  The per-sweep diffs, and with ``capture_iterates=True``
    every post-sweep block, come back for bit-level comparison against
    the recording or against another engine's replay of the same trace.

    "restore" events (crash recovery) abort the rank's in-flight sweep,
    if any, and install the checkpointed block/ghosts — both engines end
    the abort post-rotation, so the subsequent sweeps are equivalent to
    the live path's fresh post-crash BlockState.

    ``on_event(event, states)``, when given, is called after each event
    is applied, with the live per-rank BlockState map — the invariant
    walkers (e.g. the scenario error-envelope check) hook in here.

    A malformed trace (double begin, end without begin, a ghost write
    into an in-flight peer) raises through the BlockState consistency
    guards — the same errors a buggy live driver would hit.
    """
    solve = trace.solve
    states, runner = _build_states(
        solve["problem"], solve["n"], trace.peers.values(),
        delta=solve["delta"], dtype=solve["dtype"],
        local_sweep=solve.get("local_sweep", "gauss_seidel"),
        executor=executor, n_workers=n_workers, start_method=start_method,
    )
    diffs: list[tuple[int, int, float]] = []
    iterates: Optional[list[np.ndarray]] = [] if capture_iterates else None
    try:
        for ev in trace.events:
            if ev.kind == "begin":
                states[ev.rank].begin_sweep()
            elif ev.kind == "end":
                diff = states[ev.rank].finish_sweep()
                diffs.append((ev.rank, ev.iteration, diff))
                if iterates is not None:
                    iterates.append(np.array(states[ev.rank].block,
                                             copy=True))
            elif ev.kind == "ghost":
                st = states[ev.rank]
                if ev.side == "below":
                    st.update_ghost_below(ev.plane)
                else:
                    st.update_ghost_above(ev.plane)
            elif ev.kind == "restore":
                st = states[ev.rank]
                st.abort_sweep()
                st.warm_start(ev.state["block"])
                if st.ghost_below is not None \
                        and ev.state.get("ghost_below") is not None:
                    st.update_ghost_below(ev.state["ghost_below"])
                if st.ghost_above is not None \
                        and ev.state.get("ghost_above") is not None:
                    st.update_ghost_above(ev.state["ghost_above"])
            elif ev.kind != "stop":
                raise ValueError(f"unknown trace event kind {ev.kind!r}")
            if on_event is not None:
                on_event(ev, states)
        # A live abort (crash, churn) may interrupt a sweep between its
        # recorded "begin" and "end" — that sweep never landed, so drop
        # any dangling in-flight work just as the live teardown does.
        for st in states.values():
            st.abort_sweep()
        blocks = {rank: np.array(st.export_block(), copy=True)
                  for rank, st in states.items()}
    finally:
        for st in states.values():
            st.release()
        if runner is not None:
            runner.close(discard_pending=True)
    return ReplayResult(diffs=diffs, blocks=blocks, iterates=iterates)


# -- schedule fuzzing -----------------------------------------------------------


def random_schedule(seed: int, n_peers: int, n_ops: int = 60,
                    p_exchange: float = 0.4) -> list[tuple]:
    """A random *valid* split-phase schedule over ``n_peers`` peers.

    Ops are ``("begin", p)``, ``("end", p)`` and ``("xchg", src, dst)``
    (copy ``src``'s boundary plane facing ``dst`` into ``dst``'s
    ghost).  Validity is by construction: a peer begins only when idle,
    ends only when in flight, and no exchange reads or writes a peer
    whose sweep is in flight — the consistency rules the state machine
    enforces.  Every in-flight sweep is closed at the end, so the
    schedule never orphans worker commands.
    """
    rng = random.Random(seed)
    in_flight: set[int] = set()
    ops: list[tuple] = []
    for _ in range(n_ops):
        exchanges = [
            ("xchg", src, dst)
            for src in range(n_peers)
            for dst in (src - 1, src + 1)
            if 0 <= dst < n_peers
            and src not in in_flight and dst not in in_flight
        ]
        sweeps = [("end", p) if p in in_flight else ("begin", p)
                  for p in range(n_peers)]
        if exchanges and rng.random() < p_exchange:
            op = rng.choice(exchanges)
        else:
            op = rng.choice(sweeps)
        ops.append(op)
        if op[0] == "begin":
            in_flight.add(op[1])
        elif op[0] == "end":
            in_flight.discard(op[1])
    ops.extend(("end", p) for p in sorted(in_flight))
    return ops


class ScheduleHarness:
    """Execute explicit split-phase schedules outside the DES.

    The direct-drive counterpart of a recorded replay: per-peer
    :class:`BlockState` s on either engine, driven op by op, with the
    blocks, ghosts, and per-peer diff history exposed so tests can
    check order-independent invariants (error-envelope monotonicity,
    genuine convergence) against a reference solution.  Exchanges here
    read the *live* neighbour boundary — zero-latency, but at whatever
    schedule position the fuzz put them, which is exactly the arbitrary
    staleness the asynchronous model allows.
    """

    def __init__(self, problem_kind: str, n: int,
                 ranges: Sequence[tuple[int, int]],
                 delta: Optional[float] = None, dtype=None,
                 executor: str = "inline",
                 local_sweep: str = "gauss_seidel",
                 n_workers: Optional[int] = None):
        from ..solvers.distributed_richardson import get_problem

        problem = get_problem(problem_kind, n)
        if delta is None:
            delta = problem.jacobi_delta()
        self.n = n
        self.ranges = [tuple(r) for r in ranges]
        # _build_states seeds blocks from the snapshots; ghosts of None
        # are left at the BlockState default (the feasible start), which
        # is what a cold solver run starts from too.
        from ..numerics.tolerances import resolve_dtype

        u0 = problem.feasible_start().astype(resolve_dtype(dtype))
        peers = [
            PeerSnapshot(
                rank=k, lo=lo, hi=hi, block=u0[lo:hi],
                ghost_below=None, ghost_above=None,
            )
            for k, (lo, hi) in enumerate(self.ranges)
        ]
        self.states, self._runner = _build_states(
            problem_kind, n, peers, delta=delta, dtype=dtype,
            local_sweep=local_sweep, executor=executor,
            n_workers=n_workers, start_method=None,
        )
        self.n_peers = len(self.states)
        self.diffs: dict[int, list[float]] = {p: [] for p in self.states}

    # -- op execution ------------------------------------------------------------

    def apply(self, op: tuple) -> Optional[float]:
        """Execute one schedule op; "end" ops return the diff."""
        kind = op[0]
        if kind == "begin":
            self.states[op[1]].begin_sweep()
            return None
        if kind == "end":
            diff = self.states[op[1]].finish_sweep()
            self.diffs[op[1]].append(diff)
            return diff
        if kind == "xchg":
            _tag, src, dst = op
            if dst == src + 1:
                self.states[dst].update_ghost_below(
                    self.states[src].last_plane)
            elif dst == src - 1:
                self.states[dst].update_ghost_above(
                    self.states[src].first_plane)
            else:
                raise ValueError(f"peers {src} and {dst} are not adjacent")
            return None
        raise ValueError(f"unknown schedule op {op!r}")

    def run(self, ops: Iterable[tuple]) -> "ScheduleHarness":
        for op in ops:
            self.apply(op)
        return self

    def sweep_round(self) -> float:
        """One fresh-exchange synchronous round; returns the max diff.
        The cleanup/termination probe of the fuzz suite."""
        for src in range(self.n_peers - 1):
            self.apply(("xchg", src, src + 1))
            self.apply(("xchg", src + 1, src))
        worst = 0.0
        for p in range(self.n_peers):
            self.apply(("begin", p))
        for p in range(self.n_peers):
            worst = max(worst, self.apply(("end", p)))
        return worst

    # -- state inspection --------------------------------------------------------

    def block(self, rank: int) -> np.ndarray:
        return np.asarray(self.states[rank].block)

    def gather(self) -> np.ndarray:
        some = self.block(0)
        u = np.empty((self.n, self.n, self.n), dtype=some.dtype)
        for rank, (lo, hi) in enumerate(self.ranges):
            u[lo:hi] = self.block(rank)
        return u

    def error_envelope(self, reference: np.ndarray) -> float:
        """max sup-norm distance to ``reference`` over every value any
        future sweep may read: owned blocks *and* ghost planes.  The
        asynchronous iteration theory says a sweep maps values inside
        the envelope to values inside the envelope (the operator is
        sup-norm non-expansive), so this must never grow — under any
        schedule."""
        worst = 0.0
        for rank, (lo, hi) in enumerate(self.ranges):
            st = self.states[rank]
            worst = max(worst, float(
                np.max(np.abs(np.asarray(st.block)
                              - reference[lo:hi].astype(st.dtype)))))
            if st.ghost_below is not None:
                worst = max(worst, float(
                    np.max(np.abs(st.ghost_below
                                  - reference[lo - 1].astype(st.dtype)))))
            if st.ghost_above is not None:
                worst = max(worst, float(
                    np.max(np.abs(st.ghost_above
                                  - reference[hi].astype(st.dtype)))))
        return worst

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        for st in self.states.values():
            st.release()
        if self._runner is not None:
            self._runner.close(discard_pending=True)

    def __enter__(self) -> "ScheduleHarness":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
