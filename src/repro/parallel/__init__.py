"""Sharded multi-process execution of block relaxation sweeps.

The DES models the *testbed network*; this package scales the *compute*.
The block kernel + ghost-plane contract of :mod:`repro.numerics.kernels`
is process-agnostic: a sweep reads ``cur`` (+ two ghost planes), fully
overwrites ``nxt``, and returns a max-norm diff.  Everything a worker
process needs can therefore live in ``multiprocessing.shared_memory``:

:class:`SharedPlaneArena`
    one shared segment holding, per shard, the two rotation buffers
    (``(hi−lo, n, n)`` each), the two ghost planes, and a diff slot;

:class:`ShardPool`
    persistent worker processes, each owning a :class:`SweepWorkspace`
    per assigned shard and executing ``block_sweep`` over its arena
    views on command;

:class:`ParallelBlockRunner`
    the driver: one synchronous or asynchronous relaxation step across
    all shards (``sweep_all``), per-shard sweeps for the DES-resident
    solver (``sweep``), and the boundary-plane views the simulated
    ``P2P_Send``/``P2P_Receive`` path hands around.

Workers run the *same* fused kernels on the *same* layout at the *same*
dtype (float64 default, float32 opt-in — the dtype rides the arena spec
and keys the shared-runner registry), so a process-sharded sweep matches
the in-process ``block_sweep`` iterate for iterate (the equivalence
suite asserts bit-equality at both precisions, well inside the per-dtype
bounds of :mod:`repro.numerics.tolerances`).
"""

from .arena import ArenaSpec, SharedPlaneArena
from .pool import ShardPool
from .runner import (
    ParallelBlockRunner,
    acquire_shared_runner,
    rebind_shared_runner,
    release_shared_runner,
)
from .trace import (
    ScheduleHarness,
    ScheduleTrace,
    TraceRecorder,
    assert_traces_equal,
    random_schedule,
    record_schedule,
    replay_trace,
    traces_equal,
)
from .trace_io import load_trace, save_trace

__all__ = [
    "ArenaSpec",
    "SharedPlaneArena",
    "ShardPool",
    "ParallelBlockRunner",
    "acquire_shared_runner",
    "rebind_shared_runner",
    "release_shared_runner",
    "ScheduleHarness",
    "ScheduleTrace",
    "TraceRecorder",
    "assert_traces_equal",
    "random_schedule",
    "record_schedule",
    "replay_trace",
    "traces_equal",
    "load_trace",
    "save_trace",
]
