"""Persistent worker processes executing ``block_sweep`` over arena views.

A :class:`ShardPool` starts ``n_workers`` processes and assigns each a
contiguous group of shards.  Each worker attaches the shared arena,
rebuilds its problem instance from the ``(kind, n)`` spec (problem data
is deterministic — nothing large crosses a pipe), constructs one
:class:`~repro.numerics.kernels.SweepWorkspace` per owned shard, and
then serves sweep commands until closed:

    ("sweep", shard, flip, order)  →  ("done", shard, diff)

``flip`` names which rotation buffer currently holds the iterate; the
worker reads ``block(shard, flip)``, overwrites ``block(shard, 1−flip)``
and stores the max-norm diff both in the reply and in the arena's diff
slot.  Commands to one worker are served strictly in order; commands to
different workers run concurrently — that is the whole point.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import Optional, Sequence

from ..numerics.blocks import partition_planes
from .arena import ArenaSpec, SharedPlaneArena

__all__ = ["ShardPool"]

#: Environment override for the multiprocessing start method ("fork",
#: "spawn", "forkserver").  On Linux the default is fork — workers
#: inherit the imported numpy/repro modules instead of re-importing
#: them.  Elsewhere the platform default stands: macOS in particular
#: made spawn its default because forking a process with loaded system
#: frameworks (Accelerate BLAS included) can deadlock the child.
_START_METHOD_ENV = "REPRO_MP_START"


def _start_method(explicit: Optional[str]) -> Optional[str]:
    if explicit is not None:
        return explicit
    env = os.environ.get(_START_METHOD_ENV)
    if env:
        return env
    if sys.platform.startswith("linux"):
        return "fork"
    return None  # the platform's own default


def _worker_main(conn, arena_spec: ArenaSpec, problem_kind: str,
                 delta: float, shards: Sequence[int],
                 untrack: bool, slab_bytes: int) -> None:
    """Worker body: attach, build workspaces, serve sweeps until close."""
    # Imported here (not at module top): the solvers package imports the
    # runner, so a top-level import would be circular — and under fork
    # the modules are already in the child anyway.
    from ..numerics.kernels import (
        SweepWorkspace,
        block_sweep,
        seed_slab_autotune,
    )
    from ..resources import default_context
    from ..solvers.distributed_richardson import get_problem

    # The creator's slab-tuning verdict rides the spawn args: workers
    # must never burn their startup on re-measuring candidates (under
    # spawn/forkserver the cached module state is not inherited).
    seed_slab_autotune(slab_bytes)
    # Under fork the child inherits the parent's already-populated
    # telemetry; a worker must report only its own work (the parent
    # merges worker snapshots back in, so inherited counts would double).
    telemetry = default_context().telemetry
    telemetry.reset()
    arena = SharedPlaneArena.attach(arena_spec, untrack=untrack)
    try:
        problem = get_problem(problem_kind, arena.n)
        workspaces = {}
        for shard in shards:
            lo, hi = arena.shard_range(shard)
            # The workspace dtype rides the arena spec: workers always
            # sweep at the precision the creator laid the planes out in.
            workspaces[shard] = SweepWorkspace(problem, delta, lo=lo, hi=hi,
                                               dtype=arena.dtype)
        conn.send(("ready", sorted(shards)))
        while True:
            cmd = conn.recv()
            if cmd[0] == "close":
                # Final telemetry snapshot rides the close handshake —
                # the only reply the parent waits for at teardown, so
                # the sweep hot path never carries snapshot payloads.
                try:
                    conn.send(("closing", telemetry.snapshot()))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
                break
            if cmd[0] == "ping":
                conn.send(("pong",))
                continue
            if cmd[0] == "rebind":
                # Campaign keep-alive: re-aim every owned workspace at a
                # new delta without tearing the pool down.  rebind()
                # recomputes exactly what a fresh construction would, so
                # post-rebind sweeps are bit-identical to a cold pool's.
                delta = cmd[1]
                try:
                    for ws in workspaces.values():
                        ws.rebind(problem, delta)
                    conn.send(("rebound", delta))
                except Exception as err:  # pragma: no cover - defensive
                    conn.send(("error", None, repr(err)))
                continue
            if cmd[0] != "sweep":  # pragma: no cover - protocol guard
                conn.send(("error", None, f"unknown command {cmd[0]!r}"))
                continue
            _tag, shard, flip, order = cmd
            try:
                ws = workspaces[shard]
                diff = block_sweep(
                    ws,
                    arena.block(shard, flip),
                    arena.block(shard, 1 - flip),
                    arena.ghost_below(shard),
                    arena.ghost_above(shard),
                    order=order,
                )
                arena.diffs[shard] = diff
                conn.send(("done", shard, diff))
            except Exception as err:  # surface, don't die silently
                conn.send(("error", shard, repr(err)))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown
        pass
    finally:
        arena.close()
        conn.close()


class ShardPool:
    """Worker processes serving sweeps for the shards of one arena."""

    def __init__(self, arena: SharedPlaneArena, problem_kind: str,
                 delta: float, n_workers: Optional[int] = None,
                 start_method: Optional[str] = None, resources=None):
        # First thing, so close() — and the __del__ safety net — work on
        # a pool that fails anywhere in construction.
        self._closed = False
        self._conns = []
        self._procs = []
        self._stash: list[dict[int, float]] = []
        self._resources = resources
        #: Per-worker telemetry snapshots harvested at close — kept on
        #: the pool (not just merged) so tests and crashed-worker paths
        #: can see exactly what was shipped.
        self.telemetry_snapshots: dict[int, dict] = {}
        n_shards = arena.n_shards
        if n_workers is None:
            n_workers = min(n_shards, os.cpu_count() or 1)
        if not 1 <= n_workers <= n_shards:
            raise ValueError(
                f"n_workers must be in [1, {n_shards}], got {n_workers}"
            )
        self.n_workers = n_workers
        method = _start_method(start_method)
        self._ctx = multiprocessing.get_context(method)
        # Children of every start method inherit the creator's
        # resource-tracker process (fork shares the fd, spawn passes it
        # in the preparation data), and its registration set is
        # idempotent — so workers neither double-track the segment nor
        # may unregister it out from under the creator.
        untrack = False
        self._owner: list[int] = [0] * n_shards
        # Contiguous shard groups, balanced by the same apportionment as
        # the plane partitioner: neighbouring shards land on the same
        # worker where possible.
        groups = [list(r) for r in partition_planes(n_shards, n_workers)]
        for w, group in enumerate(groups):
            for shard in group:
                self._owner[shard] = w
        # Resolve the slab-tuning verdict once, here, before any worker
        # exists: the creator pays the (one-off, ~10 ms) measurement —
        # against its own resource context — and every worker is seeded
        # with the result (a worker process only ever has its own
        # default context; the verdict is hardware-scoped anyway).
        from ..numerics.kernels import autotune_slab_bytes

        slab_bytes = autotune_slab_bytes(resources)
        for w, group in enumerate(groups):
            parent, child = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child, arena.spec, problem_kind, delta, group,
                      untrack, slab_bytes),
                name=f"repro-shard-worker-{w}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
            self._stash.append({})
        try:
            for w, conn in enumerate(self._conns):
                try:
                    msg = conn.recv()
                except EOFError:
                    raise RuntimeError(
                        f"worker {w} died before reporting ready"
                    ) from None
                if msg[0] != "ready":
                    raise RuntimeError(f"worker {w} failed to start: {msg!r}")
        except BaseException:
            # Shut down whatever did start; leave no orphaned workers.
            self.close()
            raise

    def owner(self, shard: int) -> int:
        """Which worker serves ``shard``."""
        return self._owner[shard]

    def _check_open(self) -> None:
        """Campaign keep-alive makes pool lifetimes long and shared;
        using a closed pool must fail loudly here, not as an opaque
        ``BrokenPipeError`` (or a silent hang) from a dead worker."""
        if self._closed:
            raise RuntimeError(
                "ShardPool is closed — its workers are gone; acquire a "
                "fresh runner instead of reusing a released one"
            )

    def submit(self, shard: int, flip: int, order: str) -> None:
        """Queue one sweep of ``shard``; pair with :meth:`collect`."""
        self._check_open()
        self._conns[self._owner[shard]].send(("sweep", shard, flip, order))

    def rebind(self, delta: float) -> None:
        """Re-aim every worker's workspaces at a new ``delta`` (campaign
        keep-alive across a delta sweep).  All sweeps must have been
        collected first; the runner enforces that."""
        self._check_open()
        if any(self._stash):
            raise RuntimeError("cannot rebind with uncollected sweeps")
        for conn in self._conns:
            conn.send(("rebind", delta))
        for w, conn in enumerate(self._conns):
            msg = conn.recv()
            if msg[0] != "rebound":
                raise RuntimeError(f"worker {w} failed to rebind: {msg!r}")

    def collect(self, shard: int) -> float:
        """Block until ``shard``'s oldest outstanding sweep finishes."""
        self._check_open()
        w = self._owner[shard]
        stash = self._stash[w]
        if shard in stash:
            return stash.pop(shard)
        conn = self._conns[w]
        while True:
            msg = conn.recv()
            if msg[0] == "error":
                raise RuntimeError(
                    f"worker {w} failed sweeping shard {msg[1]}: {msg[2]}"
                )
            _tag, done_shard, diff = msg
            if done_shard == shard:
                return diff
            stash[done_shard] = diff

    def close(self, timeout: float = 5.0) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        self._harvest_telemetry(timeout)
        for proc in self._procs:
            proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=timeout)
        for conn in self._conns:
            conn.close()

    def _harvest_telemetry(self, timeout: float) -> None:
        """Collect each worker's ``("closing", snapshot)`` reply and fold
        it into the owning context's telemetry.  Best-effort: a dead or
        hung worker just contributes nothing — already-harvested
        snapshots are never lost."""
        from ..resources import resolve_context

        telemetry = resolve_context(self._resources).telemetry
        for w, conn in enumerate(self._conns):
            try:
                while conn.poll(timeout):
                    msg = conn.recv()
                    if msg[0] == "closing":
                        self.telemetry_snapshots[w] = msg[1]
                        break
                    # stale sweep/pong replies discarded at teardown
            except (EOFError, BrokenPipeError, OSError):
                continue
        for snap in self.telemetry_snapshots.values():
            telemetry.merge(snap)

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close(timeout=0.5)
        except Exception:
            pass
