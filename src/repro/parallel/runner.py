"""Driving sharded sweeps: the bridge between kernels, workers and DES.

:class:`ParallelBlockRunner` owns one :class:`SharedPlaneArena` plus one
:class:`ShardPool` and exposes exactly the operations the solver layer
and the benchmarks need:

- ``sweep(shard)`` — one relaxation of one shard in its worker process
  (what a DES-resident peer calls from ``BlockState.sweep``);
- ``submit_sweep``/``wait_sweep`` — the split-phase flavour;
- ``sweep_all()`` — one relaxation step of *every* shard, concurrently
  across workers: wall-clock scales with cores while the per-shard
  numerics stay bit-identical to the inline kernels;
- ``block``/``first_plane``/``last_plane``/``set_ghost_*`` — the views
  the DES-modeled ``P2P_Send``/``P2P_Receive`` path reads boundary
  planes from and writes received (possibly delayed, eq. (5)) iterates
  into;
- ``exchange_ghosts()`` — the in-arena shortcut used when the runner
  iterates standalone (benchmarks, equivalence tests), equivalent to a
  zero-latency synchronous exchange.

The solver acquires one *shared* runner per distributed solve through
:func:`acquire_shared_runner` (every simulated peer lives in the one
driver process, but each owns a different shard), and releases it when
its sub-task completes; the last release shuts the pool down and unlinks
the shared memory.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Sequence

import numpy as np

from ..numerics.tolerances import check_dtype, resolve_dtype
from ..resources import default_context, resolve_context
from .arena import SharedPlaneArena
from .pool import ShardPool

__all__ = [
    "ParallelBlockRunner",
    "acquire_shared_runner",
    "release_shared_runner",
    "rebind_shared_runner",
]


class ParallelBlockRunner:
    """Sharded sweep executor over shared-memory planes."""

    def __init__(self, problem_kind: str, n: int,
                 ranges: Optional[Sequence[tuple[int, int]]] = None,
                 n_shards: Optional[int] = None,
                 delta: Optional[float] = None,
                 n_workers: Optional[int] = None,
                 order: str = "gauss_seidel",
                 start_method: Optional[str] = None,
                 dtype=None, resources=None):
        from ..numerics.blocks import partition_planes
        from ..solvers.distributed_richardson import get_problem

        if ranges is None:
            if n_shards is None:
                raise ValueError("pass either ranges or n_shards")
            ranges = [(r.start, r.stop) for r in partition_planes(n, n_shards)]
        self.resources = resources
        self.problem = get_problem(problem_kind, n, resources=resources)
        self.problem_kind = problem_kind
        self.n = n
        self.dtype = resolve_dtype(dtype)
        self.delta = float(delta) if delta is not None else \
            self.problem.jacobi_delta()
        self.order = order
        self.arena = SharedPlaneArena(n, ranges, dtype=self.dtype)
        self.n_shards = self.arena.n_shards
        self._flip = [0] * self.n_shards
        self._pending: set[int] = set()
        # Telemetry handles (arena traffic + in-flight occupancy),
        # pre-resolved once against the owning context.  Observation
        # only: nothing below reads these back into sweep scheduling.
        tele = resolve_context(resources).telemetry
        self._tele = tele if tele.enabled else None
        if self._tele is not None:
            self._m_scatter = tele.histogram("repro_arena_scatter_seconds")
            self._m_gather = tele.histogram("repro_arena_gather_seconds")
            self._m_submitted = tele.counter("repro_sweeps_submitted_total")
            self._m_wait = tele.histogram("repro_sweep_wait_seconds")
            self._m_inflight = tele.gauge("repro_sweeps_in_flight_max")
        # Optional human-readable owner labels ("rank 2 (peer02)"), so
        # in-flight-at-close errors name the peer, not just the shard.
        self._shard_labels: dict[int, str] = {}
        self._range_index = {r: k for k, r in enumerate(self.arena.ranges)}
        # Feasible start + matching ghosts, exactly as BlockState does
        # (one deliberate cast to the arena dtype, here at the edge).
        u0 = self.problem.feasible_start().astype(self.dtype)
        for k, (lo, hi) in enumerate(self.arena.ranges):
            np.copyto(self.arena.block(k, 0), u0[lo:hi])
            if lo > 0:
                np.copyto(self.arena.ghost_below(k), u0[lo - 1])
            if hi < n:
                np.copyto(self.arena.ghost_above(k), u0[hi])
        try:
            self.pool = ShardPool(
                self.arena, problem_kind, self.delta,
                n_workers=n_workers, start_method=start_method,
                resources=resources,
            )
        except BaseException:
            self.arena.close()
            raise
        self._closed = False

    # -- lookup -----------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        return self.pool.n_workers

    def label_shard(self, shard: int, label: Optional[str]) -> None:
        """Name the shard's owner for diagnostics (None clears it)."""
        if label is None:
            self._shard_labels.pop(int(shard), None)
        else:
            self._shard_labels[int(shard)] = str(label)

    def describe_shards(self, shards) -> str:
        """Render shard ids with their owner labels, for error messages."""
        return ", ".join(
            f"{s} [{self._shard_labels[s]}]" if s in self._shard_labels
            else str(s)
            for s in sorted(shards)
        )

    def shard_for(self, lo: int, hi: int) -> int:
        """The shard owning exactly planes ``[lo, hi)``."""
        try:
            return self._range_index[(lo, hi)]
        except KeyError:
            raise LookupError(
                f"no shard covers [{lo}, {hi}); shards: {self.arena.ranges}"
            ) from None

    # -- plane access (driver-process side) ----------------------------------------

    def block(self, shard: int) -> np.ndarray:
        """The shard's *current* iterate (rotation-aware view)."""
        self._check_idle(shard)
        return self.arena.block(shard, self._flip[shard])

    def first_plane(self, shard: int) -> np.ndarray:
        """U_f(k): boundary sub-block sent to node k−1."""
        return self.block(shard)[0]

    def last_plane(self, shard: int) -> np.ndarray:
        """U_l(k): boundary sub-block sent to node k+1."""
        return self.block(shard)[-1]

    def ghost_below(self, shard: int) -> Optional[np.ndarray]:
        self._check_open()
        return self.arena.ghost_below(shard)

    def ghost_above(self, shard: int) -> Optional[np.ndarray]:
        self._check_open()
        return self.arena.ghost_above(shard)

    def set_ghost_below(self, shard: int, plane: np.ndarray) -> None:
        """Install a received boundary plane (the P2P_Receive hand-off)."""
        self._check_idle(shard)
        check_dtype(plane, self.dtype, "received boundary plane")
        ghost = self.arena.ghost_below(shard)
        if ghost is None:
            raise RuntimeError("shard touches the domain boundary below")
        np.copyto(ghost, plane)

    def set_ghost_above(self, shard: int, plane: np.ndarray) -> None:
        self._check_idle(shard)
        check_dtype(plane, self.dtype, "received boundary plane")
        ghost = self.arena.ghost_above(shard)
        if ghost is None:
            raise RuntimeError("shard touches the domain boundary above")
        np.copyto(ghost, plane)

    def gather(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Assemble the full ``(n, n, n)`` iterate (copies out of shm)."""
        if out is None:
            out = np.empty((self.n, self.n, self.n), dtype=self.dtype)
        else:
            check_dtype(out, self.dtype, "gather output")
        t_start = perf_counter() if self._tele is not None else 0.0
        for k, (lo, hi) in enumerate(self.arena.ranges):
            np.copyto(out[lo:hi], self.block(k))
        if self._tele is not None:
            self._m_gather.observe(perf_counter() - t_start)
        return out

    def scatter(self, u: np.ndarray) -> None:
        """Load a full iterate into the shards (and refresh all ghosts)."""
        if u.shape != (self.n, self.n, self.n):
            raise ValueError(f"expected {(self.n,) * 3}, got {u.shape}")
        check_dtype(u, self.dtype, "scattered iterate")
        t_start = perf_counter() if self._tele is not None else 0.0
        for k, (lo, hi) in enumerate(self.arena.ranges):
            np.copyto(self.block(k), u[lo:hi])
            if lo > 0:
                np.copyto(self.arena.ghost_below(k), u[lo - 1])
            if hi < self.n:
                np.copyto(self.arena.ghost_above(k), u[hi])
        if self._tele is not None:
            self._m_scatter.observe(perf_counter() - t_start)

    def exchange_ghosts(self) -> None:
        """Zero-latency synchronous boundary exchange between shards."""
        self._check_open()
        for k in range(self.n_shards - 1):
            np.copyto(self.arena.ghost_below(k + 1), self.last_plane(k))
            np.copyto(self.arena.ghost_above(k), self.first_plane(k + 1))

    # -- sweeping ----------------------------------------------------------------

    def submit_sweep(self, shard: int, order: Optional[str] = None) -> None:
        """Queue one relaxation of ``shard`` on its worker (non-blocking).

        Until the matching :meth:`wait_sweep`, the shard's views must not
        be read or written — the worker owns them.
        """
        self._check_open()
        if shard in self._pending:
            raise RuntimeError(f"shard {shard} already has a sweep in flight")
        self._pending.add(shard)
        if self._tele is not None:
            self._m_submitted.inc()
            self._m_inflight.set_max(len(self._pending))
        self.pool.submit(shard, self._flip[shard], order or self.order)

    def wait_sweep(self, shard: int) -> float:
        """Block until the queued sweep of ``shard`` completes; rotate
        buffers; return the shard's max-norm diff."""
        self._check_open()
        if shard not in self._pending:
            raise RuntimeError(
                f"no sweep in flight for shard {shard} (double collect, "
                "or submit_sweep was never called)"
            )
        t_start = perf_counter() if self._tele is not None else 0.0
        try:
            diff = self.pool.collect(shard)
        finally:
            # The worker's reply is consumed even when it is an error —
            # the command is spent either way, so the shard must leave
            # the pending set or a later close() would wait on (or
            # complain about) a sweep that no longer exists.
            self._pending.discard(shard)
        self._flip[shard] ^= 1
        if self._tele is not None:
            self._m_wait.observe(perf_counter() - t_start)
        return diff

    def sweep(self, shard: int, order: Optional[str] = None) -> float:
        """One relaxation of one shard (submit + wait)."""
        self.submit_sweep(shard, order)
        return self.wait_sweep(shard)

    def sweep_all(self, order: Optional[str] = None) -> list[float]:
        """One relaxation of every shard, concurrently across workers."""
        for shard in range(self.n_shards):
            self.submit_sweep(shard, order)
        return [self.wait_sweep(shard) for shard in range(self.n_shards)]

    def step_synchronous(self, order: Optional[str] = None) -> float:
        """One synchronous distributed step: sweep all shards, then the
        boundary rendezvous.  Returns the global max-norm diff."""
        diffs = self.sweep_all(order)
        self.exchange_ghosts()
        return max(diffs)

    # -- campaign keep-alive ------------------------------------------------------

    def rebind_delta(self, delta: float) -> None:
        """Re-aim the live worker pool at a new relaxation step.

        The campaign engine keeps one runner (arena + worker pool) alive
        across a delta sweep; between solves it rebinds instead of
        tearing down and re-forking.  Workers rebuild exactly the baked
        constants a fresh pool would carry, so post-rebind solves are
        bit-identical to cold ones.  All sweeps must be collected first.
        """
        self._check_open()
        if self._pending:
            raise RuntimeError(
                f"sweeps in flight for shards "
                f"{self.describe_shards(self._pending)}; "
                "collect them before rebinding"
            )
        delta = float(delta)
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.pool.rebind(delta)
        self.delta = delta

    # -- lifecycle ---------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "runner is closed (its pool and shared-memory arena are "
                "gone); acquire a fresh one"
            )

    def _check_idle(self, shard: int) -> None:
        self._check_open()
        if shard in self._pending:
            raise RuntimeError(
                f"shard {shard} has a sweep in flight; its views are "
                "owned by the worker until wait_sweep()"
            )

    def discard_pending_sweeps(self) -> list[int]:
        """Drain every outstanding sweep and drop the results (abort
        paths only).  Returns the shards that were drained.  The arena
        stays consistent — each drained sweep still rotates its shard's
        buffers, exactly as a normal collect would."""
        drained = sorted(self._pending)
        for shard in drained:
            self.wait_sweep(shard)
        return drained

    def close(self, discard_pending: bool = False) -> None:
        """Shut the pool down and unlink the arena.

        Outstanding sweeps at shutdown are a driver bug — someone
        submitted work and lost track of it — so a plain ``close()``
        raises instead of silently orphaning the worker replies.  Abort
        paths that *know* they are abandoning work pass
        ``discard_pending=True`` (the context-manager exit does, when an
        exception is already propagating, so the original error is
        never masked).
        """
        if self._closed:
            return
        if self._pending:
            if not discard_pending:
                raise RuntimeError(
                    f"sweeps still in flight for shards "
                    f"{self.describe_shards(self._pending)} at close; "
                    "collect them with wait_sweep() — or "
                    "close(discard_pending=True) on an abort path that is "
                    "deliberately abandoning them"
                )
            # Best-effort drain: a worker that died or errored must not
            # keep close() from tearing the pool and arena down (that
            # would leak processes and the shm segment, and mask the
            # exception already propagating on this abort path).
            for shard in sorted(self._pending):
                try:
                    self.wait_sweep(shard)
                except Exception:
                    pass
            self._pending.clear()
        self._closed = True
        self.pool.close()
        self.arena.close()

    def __enter__(self) -> "ParallelBlockRunner":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.close(discard_pending=exc_type is not None)


# -- shared runners for the DES-resident solver ---------------------------------------
#
# Every simulated peer of one distributed solve lives in the same driver
# process; they share one runner (one arena, one pool) and each drives
# its own shard.  Reference counting ties the pool's lifetime to the
# solve: the first peer creates, the last releases.  The registry lives
# on a ResourceContext (one per campaign / driver process; the default
# context for plain solves), so two contexts never hand each other
# runners — that isolation is what lets independent campaign branches
# run in separate drivers.


def acquire_shared_runner(problem_kind: str, n: int,
                          ranges: Sequence[tuple[int, int]],
                          delta: float,
                          n_workers: Optional[int] = None,
                          start_method: Optional[str] = None,
                          dtype=None, resources=None,
                          ) -> ParallelBlockRunner:
    # dtype is part of the key (by canonical name): a float32 solve must
    # never be handed a float64 arena, and vice versa.
    ctx = resolve_context(resources)
    key = (problem_kind, n, tuple(tuple(r) for r in ranges), float(delta),
           n_workers, start_method, resolve_dtype(dtype).name)
    with ctx.runner_lock:
        entry = ctx.runners.get(key)
        if entry is None:
            runner = ParallelBlockRunner(
                problem_kind, n, ranges=ranges, delta=delta,
                n_workers=n_workers, start_method=start_method,
                dtype=dtype, resources=resources,
            )
            entry = ctx.runners[key] = [runner, 0]
            ctx.runner_keys[id(runner)] = key
        entry[1] += 1
        return entry[0]


def release_shared_runner(runner: ParallelBlockRunner,
                          resources=None) -> None:
    """Drop one reference; the last reference closes pool + arena.

    Releasing a runner that is not registered — never acquired through
    :func:`acquire_shared_runner` on the same context, or already fully
    released — raises instead of quietly closing: with campaign
    keep-alive a double release would otherwise shut a pool down
    underneath its remaining holders (and the next acquire would hand
    out a corpse).
    """
    ctx = resolve_context(resources)
    with ctx.runner_lock:
        key = ctx.runner_keys.get(id(runner))
        if key is None:
            raise RuntimeError(
                "runner is not in the shared registry of this context — it "
                "was never acquired via acquire_shared_runner here, or this "
                "is a double release after the last reference already "
                "closed it"
            )
        entry = ctx.runners[key]
        entry[1] -= 1
        if entry[1] <= 0:
            del ctx.runners[key]
            del ctx.runner_keys[id(runner)]
            runner.close()


def rebind_shared_runner(runner: ParallelBlockRunner, delta: float,
                         resources=None) -> None:
    """Re-key a held shared runner to a new ``delta`` (campaign path).

    The campaign engine holds exactly one keep-alive reference between
    solves; when the next job in a delta sweep wants the same
    ``(problem, n, ranges, dtype)`` at a different step size, the held
    pool is rebound and re-registered under the new key so the solver's
    own ``acquire_shared_runner`` call finds it.  Refuses when anyone
    besides the single keep-alive holder still references the runner
    (a live solve would observe its delta changing mid-flight), and on
    key collisions (a distinct runner already serves the target key).
    """
    ctx = resolve_context(resources)
    with ctx.runner_lock:
        key = ctx.runner_keys.get(id(runner))
        if key is None:
            raise RuntimeError(
                "runner is not in the shared registry of this context; "
                "only runners held via acquire_shared_runner can be rebound"
            )
        entry = ctx.runners[key]
        if entry[1] != 1:
            raise RuntimeError(
                f"runner has {entry[1]} references; rebinding needs "
                "exactly one (the campaign keep-alive lease)"
            )
        new_key = key[:3] + (float(delta),) + key[4:]
        if new_key == key:
            return
        if new_key in ctx.runners:
            raise RuntimeError(
                "another shared runner already serves the target "
                "configuration; release one of them first"
            )
        runner.rebind_delta(delta)
        del ctx.runners[key]
        ctx.runners[new_key] = entry
        ctx.runner_keys[id(runner)] = new_key


def __getattr__(name: str):
    # PEP 562 read aliases of the default context's registry, so
    # existing introspection (tests asserting all leases are released)
    # keeps working after the de-globalization.
    if name == "_shared":
        return default_context().runners
    if name == "_runner_keys":
        return default_context().runner_keys
    if name == "_shared_lock":
        return default_context().runner_lock
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
