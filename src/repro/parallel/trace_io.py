"""Trace persistence: save/load :class:`ScheduleTrace` to ``.npz``.

A trace file is a single self-describing npz archive:

- ``meta``: a 0-d unicode array holding a JSON document — solve
  metadata, the peer table, and the event list, where each event's bulk
  payload (ghost plane / restore state) is an *index* into the array
  members below;
- ``peer<rank>_block`` / ``_gb`` / ``_ga``: per-peer initial snapshots;
- ``plane<j>``: ghost-event plane bytes, in event order;
- ``state<j>_block`` / ``_gb`` / ``_ga``: restore-event checkpoints.

Everything is plain arrays + JSON (``allow_pickle=False`` end to end),
so a trace dumped by a failing scenario run can be replayed anywhere —
``python -m repro.experiments replay <trace>`` — without trusting the
file.  Bit-exactness survives the round trip: array bytes are stored
verbatim and diffs go through JSON floats, which round-trip exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .trace import PeerSnapshot, ScheduleTrace, TraceEvent

__all__ = ["save_trace", "load_trace", "TRACE_FORMAT_VERSION"]

TRACE_FORMAT_VERSION = 1


def _put(arrays: dict, key: str, value) -> bool:
    if value is None:
        return False
    arrays[key] = np.asarray(value)
    return True


def save_trace(trace: ScheduleTrace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` (npz; the suffix is kept as given)."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    peers_meta = []
    for rank in sorted(trace.peers):
        snap = trace.peers[rank]
        _put(arrays, f"peer{rank}_block", snap.block)
        peers_meta.append({
            "rank": rank, "lo": snap.lo, "hi": snap.hi,
            "ghost_below": _put(arrays, f"peer{rank}_gb", snap.ghost_below),
            "ghost_above": _put(arrays, f"peer{rank}_ga", snap.ghost_above),
        })
    events_meta = []
    n_planes = n_states = 0
    for ev in trace.events:
        plane_idx = state_idx = None
        if ev.plane is not None:
            plane_idx, n_planes = n_planes, n_planes + 1
            arrays[f"plane{plane_idx}"] = ev.plane
        if ev.state is not None:
            state_idx, n_states = n_states, n_states + 1
            _put(arrays, f"state{state_idx}_block", ev.state["block"])
            _put(arrays, f"state{state_idx}_gb", ev.state.get("ghost_below"))
            _put(arrays, f"state{state_idx}_ga", ev.state.get("ghost_above"))
        events_meta.append({
            "kind": ev.kind, "rank": ev.rank, "iteration": ev.iteration,
            "side": ev.side, "diff": ev.diff,
            "src_iteration": ev.src_iteration,
            "plane": plane_idx, "state": state_idx,
        })
    meta = {
        "format": "repro-trace",
        "version": TRACE_FORMAT_VERSION,
        "solve": trace.solve,
        "peers": peers_meta,
        "events": events_meta,
    }
    arrays["meta"] = np.asarray(json.dumps(meta))
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)
    return path


def load_trace(path: Union[str, Path]) -> ScheduleTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(str(data["meta"][()]))
        if meta.get("format") != "repro-trace":
            raise ValueError(f"{path}: not a repro trace file")
        if meta.get("version") != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported trace format version "
                f"{meta.get('version')!r} (have {TRACE_FORMAT_VERSION})"
            )
        trace = ScheduleTrace(solve=dict(meta["solve"]))
        for pm in meta["peers"]:
            rank = int(pm["rank"])
            trace.peers[rank] = PeerSnapshot(
                rank=rank, lo=int(pm["lo"]), hi=int(pm["hi"]),
                block=data[f"peer{rank}_block"],
                ghost_below=data[f"peer{rank}_gb"] if pm["ghost_below"] else None,
                ghost_above=data[f"peer{rank}_ga"] if pm["ghost_above"] else None,
            )
        for em in meta["events"]:
            state = None
            if em["state"] is not None:
                j = em["state"]
                state = {
                    "block": data[f"state{j}_block"],
                    "ghost_below": (
                        data[f"state{j}_gb"] if f"state{j}_gb" in data else None
                    ),
                    "ghost_above": (
                        data[f"state{j}_ga"] if f"state{j}_ga" in data else None
                    ),
                }
            trace.events.append(TraceEvent(
                kind=em["kind"], rank=int(em["rank"]),
                iteration=int(em["iteration"]), side=em["side"],
                plane=(data[f"plane{em['plane']}"]
                       if em["plane"] is not None else None),
                diff=em["diff"],
                src_iteration=(int(em["src_iteration"])
                               if em["src_iteration"] is not None else None),
                state=state,
            ))
    return trace
