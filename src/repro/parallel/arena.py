"""Shared-memory placement of the iterate's planes, ghosts, and diffs.

One :class:`SharedPlaneArena` backs one sharded solve: for every shard
(a contiguous plane range ``[lo, hi)`` of the global ``(n, n, n)``
iterate) it holds the two rotation buffers the fused kernels swap
between, the two ghost planes neighbours write boundary sub-blocks
into, and a per-shard diff slot.  The layout is a pure function of
``(n, ranges, dtype)``, so a worker process can attach by segment name
and derive byte-identical views — no pickled arrays ever cross a pipe.

The plane dtype (float64 default, float32 opt-in) is part of the spec:
every plane view is constructed from the one layout dtype, and an
attaching process recomputes the same byte offsets from the spec — a
dtype mismatch between creator and attacher is structurally impossible
rather than a silent byte reinterpretation.  The per-shard diff slots
stay float64 regardless: they carry max-norm values already rounded by
the sweep, and widening them costs α·8 bytes total.
"""

from __future__ import annotations

import dataclasses
import secrets
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from ..numerics.tolerances import resolve_dtype

__all__ = ["ArenaSpec", "SharedPlaneArena"]

#: Width of one per-shard diff slot (always float64, see module doc).
_DIFF_ITEM = 8


@dataclasses.dataclass(frozen=True)
class ArenaSpec:
    """Everything needed to attach an arena from another process."""

    name: str
    n: int
    ranges: tuple[tuple[int, int], ...]
    #: Plane dtype name ("float64"/"float32") — a string so the spec
    #: stays a plain picklable value object.
    dtype: str = "float64"


def _validate_ranges(n: int, ranges: tuple[tuple[int, int], ...]) -> None:
    if not ranges:
        raise ValueError("arena needs at least one shard")
    expect = 0
    for lo, hi in ranges:
        if lo != expect or hi <= lo:
            raise ValueError(
                f"shard ranges must tile [0, {n}) contiguously, got {ranges}"
            )
        expect = hi
    if expect != n:
        raise ValueError(f"shard ranges cover [0, {expect}), grid has {n} planes")


def _layout(n: int, ranges: tuple[tuple[int, int], ...],
            itemsize: int) -> tuple[int, list[dict]]:
    """Byte offsets of every array in the segment (deterministic).

    ``itemsize`` is the plane dtype's width; the diff slots are appended
    last so they stay 8-byte aligned for any plane dtype (float32 blocks
    always cover a multiple of 4·n² bytes, and n²·#planes slots of it).
    """
    plane = n * n * itemsize
    offset = 0
    shards: list[dict] = []
    for lo, hi in ranges:
        block = (hi - lo) * plane
        entry = {
            "buf0": offset,
            "buf1": offset + block,
            "ghost_below": offset + 2 * block,
            "ghost_above": offset + 2 * block + plane,
        }
        offset += 2 * block + 2 * plane
        shards.append(entry)
    # Pad to the diff slots' own alignment before placing them.
    offset += (-offset) % _DIFF_ITEM
    diffs = offset
    offset += len(ranges) * _DIFF_ITEM
    return offset, [dict(s, diffs=diffs) for s in shards]


class SharedPlaneArena:
    """Shared segment + numpy views for a sharded ``(n, n, n)`` iterate.

    Create in the driver process (``SharedPlaneArena(n, ranges)``),
    attach everywhere else (``SharedPlaneArena.attach(arena.spec)``).
    The creator unlinks the segment on :meth:`close`; attachments only
    drop their mapping.
    """

    def __init__(self, n: int, ranges, dtype=None, *,
                 _attach_spec: Optional[ArenaSpec] = None,
                 _untrack_attachment: bool = False):
        if _attach_spec is None:
            ranges = tuple((int(r[0]), int(r[1])) for r in ranges)
            _validate_ranges(n, ranges)
            self.dtype = resolve_dtype(dtype)
            size, layout = _layout(n, ranges, self.dtype.itemsize)
            name = f"repro-arena-{secrets.token_hex(6)}"
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
            self._owner = True
        else:
            n = _attach_spec.n
            ranges = _attach_spec.ranges
            _validate_ranges(n, ranges)
            self.dtype = resolve_dtype(_attach_spec.dtype)
            size, layout = _layout(n, ranges, self.dtype.itemsize)
            self._shm = shared_memory.SharedMemory(name=_attach_spec.name)
            self._owner = False
            if _untrack_attachment:
                _untrack(self._shm)
        self.n = n
        self.ranges = ranges
        self.n_shards = len(ranges)
        buf = self._shm.buf
        # Every plane view below derives from the single layout dtype —
        # there is no per-array dtype to get out of sync with the byte
        # offsets computed above.
        plane_dtype = self.dtype
        self._blocks: list[tuple[np.ndarray, np.ndarray]] = []
        self._ghosts: list[tuple[np.ndarray, np.ndarray]] = []
        for (lo, hi), off in zip(ranges, layout):
            shape = (hi - lo, n, n)
            self._blocks.append((
                np.ndarray(shape, dtype=plane_dtype, buffer=buf,
                           offset=off["buf0"]),
                np.ndarray(shape, dtype=plane_dtype, buffer=buf,
                           offset=off["buf1"]),
            ))
            self._ghosts.append((
                np.ndarray((n, n), dtype=plane_dtype, buffer=buf,
                           offset=off["ghost_below"]),
                np.ndarray((n, n), dtype=plane_dtype, buffer=buf,
                           offset=off["ghost_above"]),
            ))
        self.diffs = np.ndarray(
            (self.n_shards,), dtype=np.float64, buffer=buf,
            offset=layout[0]["diffs"],
        )
        if self._owner:
            for b0, b1 in self._blocks:
                b0.fill(0.0)
                b1.fill(0.0)
            for gb, ga in self._ghosts:
                gb.fill(0.0)
                ga.fill(0.0)
            self.diffs.fill(0.0)

    @classmethod
    def attach(cls, spec: ArenaSpec, untrack: bool = False) -> "SharedPlaneArena":
        """Map an existing arena by name (worker-process side).

        ``untrack`` keeps the attachment out of *this* process's resource
        tracker.  Pass True only from a process *unrelated* to the
        creator (whose private tracker would otherwise unlink the
        segment when this process exits); children of the creator share
        its tracker, where an unregister here would erase the creator's
        own registration.
        """
        return cls(spec.n, spec.ranges, _attach_spec=spec,
                   _untrack_attachment=untrack)

    @property
    def spec(self) -> ArenaSpec:
        return ArenaSpec(name=self._shm.name, n=self.n, ranges=self.ranges,
                         dtype=self.dtype.name)

    def shard_range(self, shard: int) -> tuple[int, int]:
        return self.ranges[shard]

    def block(self, shard: int, which: int) -> np.ndarray:
        """Rotation buffer ``which`` (0 or 1) of ``shard``."""
        return self._blocks[shard][which]

    def ghost_below(self, shard: int) -> Optional[np.ndarray]:
        """Ghost plane for ``lo−1``; None when the shard touches z = 0."""
        lo, _hi = self.ranges[shard]
        return self._ghosts[shard][0] if lo > 0 else None

    def ghost_above(self, shard: int) -> Optional[np.ndarray]:
        """Ghost plane for ``hi``; None when the shard touches z = n−1."""
        _lo, hi = self.ranges[shard]
        return self._ghosts[shard][1] if hi < self.n else None

    def close(self) -> None:
        """Drop this mapping; the creator also unlinks the segment."""
        if self._shm is None:
            return
        # Views pin the exported buffer: release them before unmapping.
        self._blocks = []
        self._ghosts = []
        self.diffs = None
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - stray external view
            import gc

            gc.collect()
            shm.close()
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedPlaneArena":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Keep an attachment out of this process's resource tracker.

    Only the creating process owns the segment's lifetime; without this,
    an attaching process (< 3.13) with a *private* tracker would also
    register it and unlink it when that process exits.
    """
    try:  # pragma: no cover - CPython implementation detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
