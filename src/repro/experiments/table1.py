"""Table I verification: the protocol picks the paper's configurations.

Unlike the figure harness (which measures), this experiment *audits*:
it opens live P2PSAP sessions for every scheme × connection cell on a
two-cluster testbed and records the data-channel configuration each
session actually received, then diffs against Table I.  It also
exercises the dynamic path: changing the scheme socket option mid-
session must reconfigure the live channel to the new cell.
"""

from __future__ import annotations

import dataclasses

from ..p2psap.context import ChannelConfig, ConnectionKind, Scheme
from ..p2psap.rules import TABLE_I
from ..p2psap.socket_api import P2PSAP
from ..simnet.kernel import Simulator
from ..simnet.topology import nicta_testbed

__all__ = ["Table1Audit", "audit_table1"]


@dataclasses.dataclass
class Table1Audit:
    """Observed configuration per (scheme, connection) cell."""

    observed: dict[tuple[Scheme, ConnectionKind], ChannelConfig]
    mismatches: list[str]

    @property
    def ok(self) -> bool:
        return not self.mismatches


def audit_table1(settle: float = 5.0) -> Table1Audit:
    """Open one session per Table I cell and compare configurations."""
    sim = Simulator()
    net = nicta_testbed(sim, 4, n_clusters=2)
    protos = {name: P2PSAP(sim, net, name) for name in net.nodes}
    # peer00/peer01 share cluster0; peer02/peer03 are cluster1.
    intra_pair = ("peer00", "peer01")
    inter_pair = ("peer00", "peer02")

    sockets = {}

    def opener():
        for scheme in Scheme:
            for kind, (a, b) in (
                (ConnectionKind.INTRA_CLUSTER, intra_pair),
                (ConnectionKind.INTER_CLUSTER, inter_pair),
            ):
                sock = protos[a].socket(scheme=scheme)
                yield sock.connect(b)
                sockets[(scheme, kind)] = sock

    sim.spawn(opener())
    sim.run(until=settle)

    observed = {}
    mismatches = []
    for cell, expected in TABLE_I.items():
        sock = sockets.get(cell)
        if sock is None or sock.session is None or sock.session.config is None:
            mismatches.append(f"{cell}: session never established")
            continue
        got = sock.session.config
        observed[cell] = got
        if got != expected:
            mismatches.append(
                f"{cell}: expected {expected.describe()}, got {got.describe()}"
            )
    return Table1Audit(observed=observed, mismatches=mismatches)
