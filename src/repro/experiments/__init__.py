"""Experiment harness regenerating every table and figure of the paper."""

from .figures import (
    FIG5_N,
    FIG6_N,
    PAPER_PEER_COUNTS,
    FigureSeries,
    check_paper_claims,
    figure_series,
    scaled_size,
)
from .harness import (
    DEFAULT_TOL,
    RunResult,
    full_mode,
    run_configuration,
    scaled_spec,
)
from .reporting import figure_report, format_table
from .table1 import Table1Audit, audit_table1

__all__ = [
    "FIG5_N", "FIG6_N", "PAPER_PEER_COUNTS",
    "FigureSeries", "check_paper_claims", "figure_series", "scaled_size",
    "DEFAULT_TOL", "RunResult", "full_mode", "run_configuration",
    "scaled_spec",
    "figure_report", "format_table",
    "Table1Audit", "audit_table1",
]
