"""Experiment harness: one configuration = one measured run.

Reproduces the paper's methodology: an OEDL-style description fixes the
topology (α peers, 1 or 2 clusters, 100 ms WAN) and application
parameters (problem size n, scheme); the harness materializes it, runs
the obstacle application through P2PDC, and reports time / relaxations /
speedup / efficiency — the four panels of Figures 5 and 6.

Scaled runs
-----------
The paper's sizes (96³, 144³) converge in thousands of relaxations; the
default harness sizes are smaller so the suite is laptop-friendly.  A
naive scale-down would distort the *compute-to-communication ratio*
(smaller planes are cheap to relax but the 100 ms WAN latency does not
shrink), so :func:`scaled_spec` slows the simulated CPUs by (n/n_paper)³
and the links by (n/n_paper)² — per-sweep compute, per-plane
serialization and the fixed latency then keep the same proportions as a
full-size run on the real testbed, and the *shape* of every curve is
preserved.  Set ``REPRO_FULL=1`` to run the paper's actual sizes.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Optional


from ..core.environment import P2PDC
from ..p2psap.context import Scheme
from ..resources import resolve_context
from ..simnet.oedl import ExperimentDescription
from ..simnet.topology import NICTA_SPEC, TestbedSpec
from ..solvers.distributed_richardson import (
    DistributedSolveReport,
    ObstacleApplication,
)

__all__ = [
    "RunResult",
    "full_mode",
    "scaled_spec",
    "run_configuration",
    "run_job",
    "DEFAULT_TOL",
]

#: Tolerance used throughout the evaluation harness.
DEFAULT_TOL = 1e-4


def full_mode() -> bool:
    """Whether to run the paper's actual problem sizes."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0", "false")


def scaled_spec(n: int, n_paper: int, base: TestbedSpec = NICTA_SPEC) -> TestbedSpec:
    """Testbed spec preserving the full-size compute:comm ratios at size n.

    CPU ∝ n³ (per-sweep work), bandwidth ∝ n² (per-plane bytes), latency
    unchanged (physics).  At n == n_paper this is the NICTA spec itself.
    """
    if n > n_paper:
        raise ValueError(f"scaled size {n} exceeds paper size {n_paper}")
    ratio = n / n_paper
    return dataclasses.replace(
        base,
        cpu_hz=base.cpu_hz * ratio**3,
        ethernet_bps=base.ethernet_bps * ratio**2,
    )


@dataclasses.dataclass
class RunResult:
    """One measured configuration (one point on a Figure 5/6 panel)."""

    n: int
    n_peers: int
    n_clusters: int
    scheme: Scheme
    elapsed: float
    relaxations: float
    residual: float
    report: DistributedSolveReport
    max_wait_time: float

    def speedup(self, sequential_time: float) -> float:
        """T(1) / T(α) against the single-peer run."""
        if self.elapsed <= 0:
            raise ValueError("non-positive elapsed time")
        return sequential_time / self.elapsed

    def efficiency(self, sequential_time: float) -> float:
        """speedup / α."""
        return self.speedup(sequential_time) / self.n_peers

    def row(self, sequential_time: Optional[float] = None) -> dict[str, Any]:
        out = {
            "n": self.n,
            "peers": self.n_peers,
            "clusters": self.n_clusters,
            "scheme": self.scheme.value,
            "time_s": round(self.elapsed, 4),
            "relaxations": round(self.relaxations, 1),
            "residual": float(self.residual),
        }
        if sequential_time is not None:
            out["speedup"] = round(self.speedup(sequential_time), 3)
            out["efficiency"] = round(self.efficiency(sequential_time), 3)
        return out


def run_job(
    job,
    *,
    timeout: float = 1e7,
    warm_start_u=None,
    warm_start_label: Optional[str] = None,
    resources=None,
) -> RunResult:
    """Execute one :class:`~repro.campaign.jobs.CampaignJob` end to end.

    This is the repo's *single* execution path: ``run_configuration``
    (the historical kwargs API), the campaign engine, the CLI, and the
    campaign-service HTTP schema all normalize their inputs into a
    ``CampaignJob`` and land here — one params plumbing instead of
    three parallel ones.

    The keyword-only extras are per-*call* state, deliberately not job
    identity: an optional full-iterate warm start (``warm_start_u``
    must carry the job's dtype; ``warm_start_label`` names its source
    in the report provenance — the campaign engine keys the warm edge
    into the *cache* signature separately), the simulated-time
    ``timeout``, and ``resources`` — the explicit
    :class:`~repro.resources.ResourceContext` the solve's pooled
    resources (sweep workspaces, shared runners, problem instances)
    resolve against.  ``resources=None`` means the process default,
    which is bit-identical to the historical behaviour.  It is threaded
    through the deployment (``P2PDC`` → executors → ``TaskContext``),
    never through ``params``: params are modeled wire payload, and
    adding a key would change every SUBTASK's simulated dispatch cost.
    """
    scheme = Scheme.parse(job.scheme)
    n, n_peers = job.n, job.n_peers
    spec = NICTA_SPEC if job.n_paper is None or n >= job.n_paper \
        else scaled_spec(n, job.n_paper)
    desc = ExperimentDescription(
        name=f"obstacle-n{n}-a{n_peers}-c{job.n_clusters}-{scheme.value}",
        n_peers=n_peers,
        n_clusters=job.n_clusters,
        spec=spec,
        app_name="obstacle",
        app_params={"n": n, "tol": job.tol, "problem": job.problem},
        seed=job.seed,
    )
    deployment = desc.materialize()
    env = P2PDC(deployment.sim, deployment.network, oml=deployment.oml,
                resources=resources)
    env.register_everywhere(ObstacleApplication(resources=resources))
    params = {"n": n, "tol": job.tol, "problem": job.problem}
    # Canonical params: a default value never enters the dict, so e.g.
    # dtype="float64" and dtype=None build byte-identical SUBTASK
    # payloads — the modeled dispatch cost (and hence simulated time)
    # cannot depend on *how* a caller spelled the default.  The job's
    # __post_init__ already normalized scheme/dtype/executor/delta, and
    # the campaign engine's pooled runs rely on this to stay
    # bit-identical to cold calls.
    if job.dtype != "float64":
        params["dtype"] = job.dtype
    if job.executor != "inline":
        params["executor"] = job.executor
    if job.delta is not None:
        params["delta"] = job.delta
    if warm_start_u is not None:
        params["warm_start_u"] = warm_start_u
        if warm_start_label is not None:
            params["warm_start_label"] = warm_start_label
    if job.extra:
        params.update(job.extra_params)
    # Telemetry rides the same out-of-band channel as ``resources``: a
    # solve span plus post-run DES counter export.  Nothing here touches
    # params or the simulator, so instrumented runs stay bit-identical.
    tele = resolve_context(resources).telemetry
    sim = deployment.sim
    with tele.span("solve", n=n, peers=n_peers, clusters=job.n_clusters,
                   scheme=scheme.value, executor=job.executor):
        run = env.run_to_completion(
            "obstacle", params=params, n_peers=n_peers, scheme=scheme,
            timeout=timeout,
        )
    if tele.enabled:
        tele.counter("repro_solves_total", scheme=scheme.value).inc()
        tele.counter("repro_des_events_total").inc(sim.events_processed)
        tele.counter("repro_des_put_wakeups_total").inc(sim.put_wakeups)
        tele.gauge("repro_des_queue_depth_max").set_max(sim.max_queue_depth)
    report: DistributedSolveReport = run.output
    return RunResult(
        n=n,
        n_peers=n_peers,
        n_clusters=job.n_clusters,
        scheme=scheme,
        elapsed=run.elapsed,
        relaxations=report.relaxations,
        residual=report.residual,
        report=report,
        max_wait_time=report.max_wait_time,
    )


def run_configuration(
    n: int,
    n_peers: int,
    n_clusters: int,
    scheme: Scheme | str,
    n_paper: Optional[int] = None,
    tol: float = DEFAULT_TOL,
    problem: str = "membrane",
    seed: int = 0,
    timeout: float = 1e7,
    extra_params: Optional[dict] = None,
    *,
    dtype: Optional[object] = None,
    executor: Optional[str] = None,
    delta: Optional[float] = None,
    warm_start_u=None,
    warm_start_label: Optional[str] = None,
    resources=None,
) -> RunResult:
    """Run one (n, α, clusters, scheme) configuration end to end.

    ``n_paper`` enables ratio-preserving scaling (see :func:`scaled_spec`);
    None runs at the given size on the unscaled NICTA spec.

    A thin kwargs front over :func:`run_job`: the arguments are
    normalized into a :class:`~repro.campaign.jobs.CampaignJob` (the
    canonical request type — also what the campaign engine, the CLI
    subcommands and the service wire schema build) and executed through
    the one shared path.  ``dtype``/``executor``/``delta`` mirror the
    solver params the campaign engine drives; ``warm_start_u``/
    ``warm_start_label``/``timeout``/``resources`` are per-call state —
    see :func:`run_job`.
    """
    from ..campaign.jobs import CampaignJob

    job = CampaignJob(
        n=n, n_peers=n_peers, n_clusters=n_clusters,
        scheme=Scheme.parse(scheme).value, problem=problem, tol=tol,
        dtype="float64" if dtype is None else dtype,
        executor="inline" if executor is None else executor,
        delta=delta, n_paper=n_paper, seed=seed,
        extra=extra_params or (),
    )
    return run_job(job, timeout=timeout, warm_start_u=warm_start_u,
                   warm_start_label=warm_start_label, resources=resources)
