"""Text-table reporting for the experiment harness.

The paper presents Figures 5 and 6 as bar charts; with no plotting
dependency available, the harness prints the same series as aligned
text tables (one row per machine count, one column group per scheme ×
cluster combination) — the exact rows EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .figures import FigureSeries

__all__ = ["format_table", "figure_report"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Plain monospace table with right-aligned numeric columns."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def figure_report(series: FigureSeries, title: Optional[str] = None) -> str:
    """The four panels of one figure as text tables."""
    schemes = ("synchronous", "asynchronous", "hybrid")
    clusters = (1, 2)
    combos = [
        (s, c) for s in schemes for c in clusters
        if series.series(s, c)
    ]
    headers = ["alpha"] + [f"{s[:5]}/{c}cl" for s, c in combos]
    blocks = []
    panels = [
        ("time (s)", lambda s, c: series.times(s, c)),
        ("relaxations", lambda s, c: series.relaxations(s, c)),
        ("speedup", lambda s, c: series.speedups(s, c)),
        ("efficiency", lambda s, c: series.efficiencies(s, c)),
    ]
    for panel_name, getter in panels:
        columns = {combo: getter(*combo) for combo in combos}
        rows = []
        for i, alpha in enumerate(series.peer_counts):
            row = [alpha]
            for combo in combos:
                col = columns[combo]
                row.append(col[i] if i < len(col) else "")
            rows.append(row)
        blocks.append(format_table(
            headers, rows,
            title=f"{title or f'n={series.n}'} — {panel_name}",
        ))
    return "\n\n".join(blocks)
