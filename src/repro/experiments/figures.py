"""Figure 5 / Figure 6 series: the paper's evaluation sweep.

Each figure shows, for one problem size (96³ for Figure 5, 144³ for
Figure 6) and for machine counts α ∈ {1, 2, 4, 8, 16, 24}:

  - wall-clock time,
  - number of relaxations,
  - speedup,
  - efficiency,

for the synchronous, asynchronous and hybrid schemes, each measured on a
single cluster and on 2 clusters joined by a 100 ms Netem path.

:func:`figure_series` regenerates one figure's data (scaled by default —
see :mod:`repro.experiments.harness`); :func:`check_paper_claims`
asserts the qualitative findings of Section V.C on a series.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence


from .harness import DEFAULT_TOL, RunResult, full_mode

__all__ = [
    "FigureSeries",
    "figure_jobs",
    "figure_series",
    "check_paper_claims",
    "PAPER_PEER_COUNTS",
    "FIG5_N",
    "FIG6_N",
    "scaled_size",
]

#: Machine counts of Figures 5 and 6.
PAPER_PEER_COUNTS = (1, 2, 4, 8, 16, 24)

#: Paper problem sizes.
FIG5_N = 96
FIG6_N = 144


def scaled_size(n_paper: int) -> int:
    """The laptop-scale stand-in for a paper problem size."""
    if full_mode():
        return n_paper
    return {FIG5_N: 24, FIG6_N: 36}.get(n_paper, max(8, n_paper // 4))


@dataclasses.dataclass
class FigureSeries:
    """All runs for one figure: results[(scheme, clusters, alpha)]."""

    n_paper: int
    n: int
    peer_counts: tuple[int, ...]
    results: dict[tuple[str, int, int], RunResult]

    @property
    def sequential_time(self) -> float:
        return self.results[("synchronous", 1, 1)].elapsed

    def series(self, scheme: str, clusters: int) -> list[RunResult]:
        return [
            self.results[(scheme, clusters if alpha > 1 else 1, alpha)]
            for alpha in self.peer_counts
            if (scheme, clusters if alpha > 1 else 1, alpha) in self.results
        ]

    def times(self, scheme: str, clusters: int) -> list[float]:
        return [r.elapsed for r in self.series(scheme, clusters)]

    def relaxations(self, scheme: str, clusters: int) -> list[float]:
        return [r.relaxations for r in self.series(scheme, clusters)]

    def speedups(self, scheme: str, clusters: int) -> list[float]:
        t1 = self.sequential_time
        return [r.speedup(t1) for r in self.series(scheme, clusters)]

    def efficiencies(self, scheme: str, clusters: int) -> list[float]:
        t1 = self.sequential_time
        return [r.efficiency(t1) for r in self.series(scheme, clusters)]


def figure_jobs(
    n_paper: int,
    peer_counts: Sequence[int] = PAPER_PEER_COUNTS,
    schemes: Sequence[str] = ("synchronous", "asynchronous", "hybrid"),
    cluster_counts: Sequence[int] = (1, 2),
    tol: float = DEFAULT_TOL,
    n_override: Optional[int] = None,
    dtype: str = "float64",
    executor: str = "inline",
):
    """The campaign jobs of one figure's grid.

    Returns ``(n, peer_counts, baseline_job, job_for)``: the run size,
    the machine counts actually used (clipped to α ≤ n), the α = 1
    baseline job every series shares, and a map from each multi-peer
    ``(scheme, clusters, alpha)`` cell to its job.
    """
    from ..campaign import CampaignJob

    n = n_override if n_override is not None else scaled_size(n_paper)
    peer_counts = tuple(a for a in peer_counts if a <= n)

    def job(alpha: int, clusters: int, scheme: str) -> "CampaignJob":
        return CampaignJob(
            n=n, n_peers=alpha, n_clusters=clusters, scheme=scheme,
            tol=tol, n_paper=n_paper, dtype=dtype, executor=executor,
        )

    baseline = job(1, 1, "synchronous")
    job_for: dict[tuple[str, int, int], CampaignJob] = {}
    for scheme in schemes:
        for clusters in cluster_counts:
            for alpha in peer_counts:
                if alpha == 1 or clusters > alpha:
                    continue
                key = (scheme, clusters, alpha)
                if key not in job_for:
                    job_for[key] = job(alpha, clusters, scheme)
    return n, tuple(peer_counts), baseline, job_for


def figure_series(
    n_paper: int,
    peer_counts: Sequence[int] = PAPER_PEER_COUNTS,
    schemes: Sequence[str] = ("synchronous", "asynchronous", "hybrid"),
    cluster_counts: Sequence[int] = (1, 2),
    tol: float = DEFAULT_TOL,
    n_override: Optional[int] = None,
    cache=None,
) -> FigureSeries:
    """Regenerate one figure's full data set.

    α = 1 is run once (cluster split is meaningless for one machine) and
    shared by both cluster series, like the paper's plots.

    The grid executes through the campaign engine: one workspace pool
    serves every run, and passing a
    :class:`~repro.campaign.ResultCache` lets a re-regeneration (or an
    overlapping figure) skip already-solved cells.  Pooled execution is
    bit-identical to the historical per-run loop.
    """
    from ..campaign import Campaign

    n, peer_counts, baseline_job, job_for = figure_jobs(
        n_paper, peer_counts, schemes, cluster_counts, tol, n_override,
    )
    with Campaign([baseline_job, *job_for.values()], cache=cache) as campaign:
        outcome = campaign.run()
    results: dict[tuple[str, int, int], RunResult] = {}
    baseline = outcome.result_for(baseline_job)
    for scheme in schemes:
        results[(scheme, 1, 1)] = baseline
    for key, job in job_for.items():
        results[key] = outcome.result_for(job)
    return FigureSeries(
        n_paper=n_paper, n=n, peer_counts=tuple(peer_counts), results=results
    )


def check_paper_claims(series: FigureSeries, alphas: Optional[Sequence[int]] = None
                       ) -> list[str]:
    """Assert the qualitative findings of Section V.C; returns the list
    of violated claims (empty = full reproduction).

    Claims checked:

    C1. Asynchronous schemes outperform synchronous ones (time, for the
        multi-peer points).
    C2. Synchronous relaxation count is (nearly) constant with α;
        asynchronous average relaxations grow with α.
    C3. Synchronous efficiency degrades sharply on 2 clusters;
        asynchronous efficiency is close between 1 and 2 clusters.
    C4. Hybrid efficiency sits between synchronous and asynchronous
        (2-cluster series, large α).
    """
    alphas = [a for a in (alphas or series.peer_counts) if a > 1]
    failures: list[str] = []

    def get(scheme, clusters, alpha):
        return series.results.get((scheme, clusters, alpha))

    # C1 — async beats sync on time wherever both exist (α > 1).
    for clusters in (1, 2):
        for a in alphas:
            s, y = get("synchronous", clusters, a), get("asynchronous", clusters, a)
            if s and y and not y.elapsed <= s.elapsed * 1.05:
                failures.append(
                    f"C1: async slower than sync at α={a}, {clusters} cluster(s) "
                    f"({y.elapsed:.3f}s vs {s.elapsed:.3f}s)"
                )

    # C2 — sync relaxations ~constant; async grows.
    sync_relax = [get("synchronous", 1, a).relaxations
                  for a in alphas if get("synchronous", 1, a)]
    if sync_relax and (max(sync_relax) > 1.25 * min(sync_relax)):
        failures.append(f"C2: sync relaxations not ~constant: {sync_relax}")
    async_relax = [get("asynchronous", 1, a).relaxations
                   for a in alphas if get("asynchronous", 1, a)]
    if len(async_relax) >= 2 and not async_relax[-1] > async_relax[0]:
        failures.append(f"C2: async relaxations do not grow: {async_relax}")

    # C3 — sync hurt by 2 clusters; async insensitive.
    t1 = series.sequential_time
    for a in alphas:
        s1, s2 = get("synchronous", 1, a), get("synchronous", 2, a)
        if s1 and s2 and not s2.elapsed > 1.5 * s1.elapsed:
            failures.append(
                f"C3: sync not hurt by 2 clusters at α={a} "
                f"({s2.elapsed:.3f}s vs {s1.elapsed:.3f}s)"
            )
        y1, y2 = get("asynchronous", 1, a), get("asynchronous", 2, a)
        if y1 and y2 and not y2.elapsed < 3.0 * y1.elapsed:
            failures.append(
                f"C3: async too sensitive to 2 clusters at α={a} "
                f"({y2.elapsed:.3f}s vs {y1.elapsed:.3f}s)"
            )

    # C4 — hybrid between sync and async on the 2-cluster efficiency.
    a_big = max(alphas)
    s, h, y = (get(sch, 2, a_big) for sch in
               ("synchronous", "hybrid", "asynchronous"))
    if s and h and y:
        es, eh, ey = (r.efficiency(t1) for r in (s, h, y))
        if not (es <= eh * 1.1 and eh <= ey * 1.1):
            failures.append(
                f"C4: hybrid efficiency not between sync and async at "
                f"α={a_big}: sync={es:.3f} hybrid={eh:.3f} async={ey:.3f}"
            )
    return failures
