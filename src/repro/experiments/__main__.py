"""Command-line regeneration of the paper's tables and figures.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig5 [--alphas 1,2,4,8] [--full]
    python -m repro.experiments fig6 [--alphas 1,2,4,8] [--full]
    python -m repro.experiments all
    python -m repro.experiments campaign [--fig 5|6 | --n N] [options]
    python -m repro.experiments scenario --seed N [--scheme S] [--exec E]
    python -m repro.experiments replay <trace.npz> [--executor E]

``--full`` runs the paper's actual problem sizes (equivalent to setting
``REPRO_FULL=1``); default is the laptop-scale ratio-preserving setup.

``scenario`` runs one seeded fault-injection scenario
(:mod:`repro.scenarios`) — crash/restart, churn, link degradation —
against a live solve and checks the standing invariants; ``replay``
re-executes a dumped schedule trace (``.npz``) and verifies the replay
reproduces the recorded per-sweep diffs bit-exactly.

``campaign`` runs a whole grid through the batched campaign engine
(:mod:`repro.campaign`): pooled sweep workspaces, keep-alive worker
pools, and — with ``--cache-dir`` — a persistent result cache, so
re-running the same command is served from disk instead of re-solving.
``--fig 5``/``--fig 6`` regenerates that figure's grid through the
engine; ``--n`` runs a custom matrix over the given axes.  With
``--warm-start``, delta-sweep groups are chained so each solve starts
from its neighbour's solution.  ``--min-cache-hits K`` exits non-zero
when fewer than K jobs were served from cache — the CI smoke job uses
it to assert that a second pass actually hits.  ``--drivers N`` runs
independent campaign branches in N driver worker processes sharing the
disk cache; records stay bit-identical to the sequential engine.
"""

from __future__ import annotations

import argparse
import os
import sys

from .figures import (
    FIG5_N,
    FIG6_N,
    check_paper_claims,
    figure_series,
    scaled_size,
)
from .reporting import figure_report, format_table
from .table1 import audit_table1


def cmd_table1() -> int:
    audit = audit_table1()
    rows = [
        [scheme.value, conn.value, cfg.mode.value,
         "reliable" if cfg.reliable else "unreliable", cfg.congestion]
        for (scheme, conn), cfg in audit.observed.items()
    ]
    print(format_table(
        ["scheme", "connection", "mode", "reliability", "congestion"],
        rows, title="Table I — observed on live P2PSAP sessions",
    ))
    if audit.ok:
        print("\nall 6 cells match the paper")
        return 0
    print("\nMISMATCHES:")
    for m in audit.mismatches:
        print(" ", m)
    return 1


def cmd_figure(n_paper: int, alphas: tuple[int, ...]) -> int:
    label = "Figure 5" if n_paper == FIG5_N else "Figure 6"
    print(f"regenerating {label} (paper n={n_paper}) "
          f"with α ∈ {list(alphas)} ...\n", flush=True)
    series = figure_series(n_paper, peer_counts=alphas)
    print(figure_report(series, title=f"{label} (run n={series.n})"))
    failures = check_paper_claims(series)
    if failures:
        print("\nclaim violations:")
        for f in failures:
            print(" ", f)
        return 1
    print("\nall Section V.C claims hold")
    return 0


def cmd_campaign(args) -> int:
    from ..campaign import Campaign, ResultCache, expand_matrix
    from .figures import figure_jobs

    cache = None
    if args.cache_dir:
        budget = None
        if args.cache_budget_mb is not None:
            budget = int(args.cache_budget_mb * 1024 * 1024)
        cache = ResultCache(args.cache_dir, max_disk_bytes=budget)
    if args.fig:
        n_paper = FIG5_N if args.fig == 5 else FIG6_N
        _n, _alphas, baseline, job_for = figure_jobs(
            n_paper, peer_counts=args.alphas, schemes=args.schemes,
            cluster_counts=args.clusters, tol=args.tol,
            dtype=args.dtype, executor=args.executor,
        )
        jobs = [baseline, *job_for.values()]
        title = f"Figure {args.fig} grid (paper n={n_paper})"
    else:
        jobs = expand_matrix(
            ns=[args.n], n_peers=args.alphas, n_clusters=args.clusters,
            schemes=args.schemes, deltas=args.deltas or (None,),
            dtypes=[args.dtype], executors=[args.executor], tol=args.tol,
        )
        title = f"campaign matrix (n={args.n})"
    print(f"{title}: {len(jobs)} job(s)"
          + (f", cache at {args.cache_dir}" if args.cache_dir else ""),
          flush=True)

    def progress(record):
        print(f"  [{record.source:5s}] {record.job.label()}  "
              f"({record.wall_time:.2f}s wall)", flush=True)

    with Campaign(jobs, cache=cache, warm_start=args.warm_start,
                  drivers=args.drivers) as campaign:
        outcome = campaign.run(progress=progress)
    rows = outcome.rows()
    headers = sorted({k for row in rows for k in row})
    print()
    print(format_table(headers, [[row.get(h, "") for h in headers]
                                 for row in rows], title=title))
    print(f"\njobs: {outcome.n_jobs}  solved: {outcome.runs}  "
          f"cache hits: {outcome.cache_hits}  "
          f"duplicates: {outcome.duplicates}")
    if args.drivers == 1:
        # Pool and cache counters live in the driver workers otherwise.
        pool = campaign.workspace_pool
        if pool is not None:
            print(f"workspace pool: {pool.created} created, "
                  f"{pool.reused} reused")
        if cache is not None:
            stats = cache.stats()
            print(f"result cache: {stats['hits']} hits, "
                  f"{stats['misses']} misses, {stats['stores']} stores, "
                  f"{stats['evictions']} evictions "
                  f"(hit rate {stats['hit_rate']:.0%})")
    if args.min_cache_hits and outcome.cache_hits < args.min_cache_hits:
        print(f"FAIL: expected >= {args.min_cache_hits} cache hits, "
              f"got {outcome.cache_hits}")
        return 1
    return 0


def cmd_scenario(args) -> int:
    from ..scenarios import generate_script, run_scenario

    script = generate_script(
        args.seed, scheme=args.scheme, executor=args.scenario_executor,
    )
    result = run_scenario(script, dump_dir=args.dump_dir)
    print(result.summary())
    return 0 if result.ok else 1


def cmd_replay(args) -> int:
    from ..parallel import load_trace, replay_trace

    trace = load_trace(args.path)
    recorded = [(ev.rank, ev.iteration, ev.diff)
                for ev in trace.events if ev.kind == "end"]
    print(f"{args.path}: {len(trace.peers)} peers, "
          f"{len(trace.events)} events ({len(recorded)} sweeps), "
          f"solve={trace.solve}")
    result = replay_trace(trace, executor=args.executor)
    mismatches = [
        (rank, it, rec, rep)
        for (rank, it, rec), (_r, _i, rep) in zip(recorded, result.diffs)
        if rec is not None and rec != rep
    ]
    if len(result.diffs) != len(recorded):
        print(f"FAIL: replay produced {len(result.diffs)} sweeps, "
              f"trace recorded {len(recorded)}")
        return 1
    if mismatches:
        print(f"FAIL: {len(mismatches)} sweep diff(s) diverge:")
        for rank, it, rec, rep in mismatches[:10]:
            print(f"  rank {rank} it {it}: recorded {rec!r} "
                  f"replayed {rep!r}")
        return 1
    print(f"replay on {args.executor!r} executor reproduces all "
          f"{len(recorded)} recorded sweep diffs bit-exactly")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "target",
        choices=["table1", "fig5", "fig6", "all", "campaign",
                 "scenario", "replay"],
    )
    parser.add_argument(
        "path", nargs="?", default=None,
        help="trace file for the replay target",
    )
    parser.add_argument(
        "--alphas", default="1,2,4,8",
        help="comma-separated machine counts (default 1,2,4,8; the "
             "paper uses 1,2,4,8,16,24)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run the paper's actual problem sizes (96³ / 144³)",
    )
    group = parser.add_argument_group("campaign options")
    group.add_argument("--fig", type=int, choices=[5, 6], default=None,
                       help="regenerate this figure's grid through the "
                            "campaign engine")
    group.add_argument("--n", type=int, default=None,
                       help="custom-matrix problem size (ignored with "
                            "--fig)")
    group.add_argument("--schemes", default="synchronous,asynchronous,hybrid",
                       help="comma-separated schemes")
    group.add_argument("--clusters", default="1,2",
                       help="comma-separated cluster counts")
    group.add_argument("--deltas", default="",
                       help="comma-separated relaxation steps (delta "
                            "sweep); empty = the problem default")
    group.add_argument("--tol", type=float, default=1e-4)
    group.add_argument("--dtype", default="float64",
                       choices=["float64", "float32"])
    group.add_argument("--executor", default="inline",
                       choices=["inline", "process"])
    group.add_argument("--cache-dir", default=None,
                       help="persistent result-cache directory (created "
                            "if missing); omit for no cross-run cache")
    group.add_argument("--cache-budget-mb", type=float, default=None,
                       help="bound the disk cache to this many MiB with "
                            "least-recently-used eviction (default: "
                            "unbounded, as before)")
    group.add_argument("--warm-start", action="store_true",
                       help="seed each delta-sweep solve from its "
                            "neighbour's solution")
    group.add_argument("--drivers", type=int, default=1,
                       help="driver worker processes executing "
                            "independent campaign branches in parallel "
                            "(default 1 = sequential in-process; "
                            "results are bit-identical either way)")
    group.add_argument("--min-cache-hits", type=int, default=0,
                       help="exit 1 when fewer jobs were served from "
                            "the cache (CI smoke assertion)")
    sgroup = parser.add_argument_group("scenario / replay options")
    sgroup.add_argument("--seed", type=int, default=0,
                        help="scenario seed (the script is a pure "
                             "function of it)")
    sgroup.add_argument("--scheme", default=None,
                        choices=["synchronous", "asynchronous", "hybrid"],
                        help="override the seed-derived scheme")
    sgroup.add_argument("--exec", dest="scenario_executor", default=None,
                        choices=["inline", "process"],
                        help="override the seed-derived sweep executor")
    sgroup.add_argument("--dump-dir", default=None,
                        help="dump schedule traces here when an "
                             "invariant fails")
    args = parser.parse_args(argv)
    if getattr(args, "cache_budget_mb", None) is not None:
        if not args.cache_dir:
            parser.error("--cache-budget-mb requires --cache-dir "
                         "(there is no disk cache to bound without one)")
        if args.cache_budget_mb <= 0:
            parser.error("--cache-budget-mb must be positive")
    if args.full:
        os.environ["REPRO_FULL"] = "1"
    args.alphas = tuple(int(a) for a in args.alphas.split(","))
    alphas = args.alphas

    if args.target == "scenario":
        return cmd_scenario(args)
    if args.target == "replay":
        if args.path is None:
            parser.error("replay needs a trace file path")
        return cmd_replay(args)
    if args.target == "campaign":
        if args.drivers < 1:
            parser.error("--drivers must be >= 1")
        args.schemes = tuple(s for s in args.schemes.split(",") if s)
        args.clusters = tuple(int(c) for c in args.clusters.split(","))
        args.deltas = tuple(float(d) for d in args.deltas.split(",") if d)
        if args.fig is None and args.n is None:
            args.n = scaled_size(FIG5_N)
        return cmd_campaign(args)

    rc = 0
    if args.target in ("table1", "all"):
        rc |= cmd_table1()
    if args.target in ("fig5", "all"):
        rc |= cmd_figure(FIG5_N, alphas)
    if args.target in ("fig6", "all"):
        rc |= cmd_figure(FIG6_N, alphas)
    return rc


if __name__ == "__main__":
    sys.exit(main())
