"""Command-line regeneration of the paper's tables and figures.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig5 [--alphas 1,2,4,8] [--full]
    python -m repro.experiments fig6 [--alphas 1,2,4,8] [--full]
    python -m repro.experiments all

``--full`` runs the paper's actual problem sizes (equivalent to setting
``REPRO_FULL=1``); default is the laptop-scale ratio-preserving setup.
"""

from __future__ import annotations

import argparse
import os
import sys

from .figures import FIG5_N, FIG6_N, check_paper_claims, figure_series
from .reporting import figure_report, format_table
from .table1 import audit_table1


def cmd_table1() -> int:
    audit = audit_table1()
    rows = [
        [scheme.value, conn.value, cfg.mode.value,
         "reliable" if cfg.reliable else "unreliable", cfg.congestion]
        for (scheme, conn), cfg in audit.observed.items()
    ]
    print(format_table(
        ["scheme", "connection", "mode", "reliability", "congestion"],
        rows, title="Table I — observed on live P2PSAP sessions",
    ))
    if audit.ok:
        print("\nall 6 cells match the paper")
        return 0
    print("\nMISMATCHES:")
    for m in audit.mismatches:
        print(" ", m)
    return 1


def cmd_figure(n_paper: int, alphas: tuple[int, ...]) -> int:
    label = "Figure 5" if n_paper == FIG5_N else "Figure 6"
    print(f"regenerating {label} (paper n={n_paper}) "
          f"with α ∈ {list(alphas)} ...\n", flush=True)
    series = figure_series(n_paper, peer_counts=alphas)
    print(figure_report(series, title=f"{label} (run n={series.n})"))
    failures = check_paper_claims(series)
    if failures:
        print("\nclaim violations:")
        for f in failures:
            print(" ", f)
        return 1
    print("\nall Section V.C claims hold")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "target", choices=["table1", "fig5", "fig6", "all"],
    )
    parser.add_argument(
        "--alphas", default="1,2,4,8",
        help="comma-separated machine counts (default 1,2,4,8; the "
             "paper uses 1,2,4,8,16,24)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run the paper's actual problem sizes (96³ / 144³)",
    )
    args = parser.parse_args(argv)
    if args.full:
        os.environ["REPRO_FULL"] = "1"
    alphas = tuple(int(a) for a in args.alphas.split(","))

    rc = 0
    if args.target in ("table1", "all"):
        rc |= cmd_table1()
    if args.target in ("fig5", "all"):
        rc |= cmd_figure(FIG5_N, alphas)
    if args.target in ("fig6", "all"):
        rc |= cmd_figure(FIG6_N, alphas)
    return rc


if __name__ == "__main__":
    sys.exit(main())
