"""Command-line front door: subcommands over one shared job model.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig5 [--alphas 1,2,4,8] [--full]
    python -m repro.experiments fig6 [--alphas 1,2,4,8] [--full]
    python -m repro.experiments all
    python -m repro.experiments campaign [--fig 5|6 | --n N] [options]
    python -m repro.experiments scenario --seed N [--scheme S] [--exec E]
    python -m repro.experiments replay <trace.npz> [--executor E]
    python -m repro.experiments serve [--port P] [--cache-dir D] [...]
    python -m repro.experiments submit --url URL [matrix options]
    python -m repro.experiments timeline <dump.json> [--width W]

Every target is a real argparse subcommand; the recurring flag groups
(problem matrix, dtype/executor, result cache, drivers) are shared
parent parsers, so ``campaign``, ``serve`` and ``submit`` spell them
identically.  ``--full`` runs the paper's actual problem sizes
(equivalent to setting ``REPRO_FULL=1``); default is the laptop-scale
ratio-preserving setup.

``scenario`` runs one seeded fault-injection scenario
(:mod:`repro.scenarios`) — crash/restart, churn, link degradation —
against a live solve and checks the standing invariants; ``replay``
re-executes a dumped schedule trace (``.npz``) and verifies the replay
reproduces the recorded per-sweep diffs bit-exactly.

``campaign`` runs a whole grid through the batched campaign engine
(:mod:`repro.campaign`): pooled sweep workspaces, keep-alive worker
pools, and — with ``--cache-dir`` — a persistent result cache, so
re-running the same command is served from disk instead of re-solving.
``--fig 5``/``--fig 6`` regenerates that figure's grid through the
engine; ``--n`` runs a custom matrix over the given axes.  With
``--warm-start``, delta-sweep groups are chained so each solve starts
from its neighbour's solution.  With ``--ladder``, every eligible
float64 job gets a mixed-precision multigrid chain planned in front of
it — half-size float32 solve, trilinearly interpolated float32 warm
start, float64 polish to the requested tolerance — same verified STOP,
less float64 work.  ``--min-cache-hits K`` exits non-zero
when fewer than K jobs were served from cache — the CI smoke job uses
it to assert that a second pass actually hits.  ``--drivers N`` runs
independent campaign branches in N driver worker processes sharing the
disk cache; records stay bit-identical to the sequential engine.

``campaign``, ``scenario`` and ``serve`` accept ``--telemetry-json
PATH``: on exit they write the run's merged telemetry snapshot (see
:mod:`repro.telemetry`) as JSON — counters, histograms, and, when
``REPRO_TELEMETRY=spans`` is set, the span ring buffer.  ``timeline``
renders such a dump as a per-peer span timeline (solve → iteration →
sweep → ghost-exchange) for profiling without any external tooling.

``serve`` starts the campaign service daemon (:mod:`repro.service`):
a long-lived HTTP front door over one persistent result cache and
driver pool.  ``submit`` builds the same job matrix ``campaign`` would
and POSTs it to a running daemon instead of solving locally — same
jobs, same cache keys, bit-identical records.
"""

from __future__ import annotations

import argparse
import os
import sys

from .figures import (
    FIG5_N,
    FIG6_N,
    check_paper_claims,
    figure_series,
    scaled_size,
)
from .reporting import figure_report, format_table
from .table1 import audit_table1


def cmd_table1() -> int:
    audit = audit_table1()
    rows = [
        [scheme.value, conn.value, cfg.mode.value,
         "reliable" if cfg.reliable else "unreliable", cfg.congestion]
        for (scheme, conn), cfg in audit.observed.items()
    ]
    print(format_table(
        ["scheme", "connection", "mode", "reliability", "congestion"],
        rows, title="Table I — observed on live P2PSAP sessions",
    ))
    if audit.ok:
        print("\nall 6 cells match the paper")
        return 0
    print("\nMISMATCHES:")
    for m in audit.mismatches:
        print(" ", m)
    return 1


def cmd_figure(n_paper: int, alphas: tuple[int, ...]) -> int:
    label = "Figure 5" if n_paper == FIG5_N else "Figure 6"
    print(f"regenerating {label} (paper n={n_paper}) "
          f"with α ∈ {list(alphas)} ...\n", flush=True)
    series = figure_series(n_paper, peer_counts=alphas)
    print(figure_report(series, title=f"{label} (run n={series.n})"))
    failures = check_paper_claims(series)
    if failures:
        print("\nclaim violations:")
        for f in failures:
            print(" ", f)
        return 1
    print("\nall Section V.C claims hold")
    return 0


def _build_cache(args):
    """The ResultCache the cache flag group describes (None without
    ``--cache-dir``)."""
    from ..campaign import ResultCache

    if not args.cache_dir:
        return None
    budget = None
    if args.cache_budget_mb is not None:
        budget = int(args.cache_budget_mb * 1024 * 1024)
    return ResultCache(args.cache_dir, max_disk_bytes=budget)


def _dump_telemetry(path: str, snapshot: dict) -> None:
    """Write a merged telemetry snapshot as JSON (``--telemetry-json``)."""
    import json

    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=1)
    spans = len(snapshot.get("spans", []))
    print(f"telemetry snapshot -> {path} "
          f"({len(snapshot.get('counters', {}))} counter(s), "
          f"{spans} span(s))", flush=True)


def _matrix_jobs(args):
    """The job list the matrix flag group describes — one builder for
    ``campaign`` (local engine) and ``submit`` (HTTP), so both sides
    produce identical jobs and hence identical cache keys."""
    from ..campaign import expand_matrix
    from .figures import figure_jobs

    schemes = tuple(s for s in args.schemes.split(",") if s)
    clusters = tuple(int(c) for c in args.clusters.split(","))
    deltas = tuple(float(d) for d in args.deltas.split(",") if d)
    if args.fig:
        n_paper = FIG5_N if args.fig == 5 else FIG6_N
        _n, _alphas, baseline, job_for = figure_jobs(
            n_paper, peer_counts=args.alphas, schemes=schemes,
            cluster_counts=clusters, tol=args.tol,
            dtype=args.dtype, executor=args.executor,
        )
        jobs = [baseline, *job_for.values()]
        title = f"Figure {args.fig} grid (paper n={n_paper})"
    else:
        n = args.n if args.n is not None else scaled_size(FIG5_N)
        jobs = expand_matrix(
            ns=[n], n_peers=args.alphas, n_clusters=clusters,
            schemes=schemes, deltas=deltas or (None,),
            dtypes=[args.dtype], executors=[args.executor], tol=args.tol,
        )
        title = f"campaign matrix (n={n})"
    return jobs, title


def _reject_subfloor_tols(jobs) -> int:
    """Refuse jobs whose tolerance their dtype cannot resolve.

    The solver would raise the same :class:`ToleranceFloorError` at
    construction; validating the matrix up front turns that into one
    readable CLI error instead of a traceback from inside a solve (or a
    driver worker).  Returns 0 when every job is fine.
    """
    from ..numerics import ToleranceFloorError, check_termination_tol

    for job in jobs:
        try:
            check_termination_tol(job.tol, job.dtype)
        except ToleranceFloorError as exc:
            print(f"error: {job.label()}: {exc}", file=sys.stderr)
            return 2
    return 0


def _print_rows(rows, title) -> None:
    headers = sorted({k for row in rows for k in row})
    print()
    print(format_table(headers, [[row.get(h, "") for h in headers]
                                 for row in rows], title=title))


def cmd_campaign(args) -> int:
    from ..campaign import Campaign

    cache = _build_cache(args)
    jobs, title = _matrix_jobs(args)
    rc = _reject_subfloor_tols(jobs)
    if rc:
        return rc
    print(f"{title}: {len(jobs)} job(s)"
          + (f", cache at {args.cache_dir}" if args.cache_dir else ""),
          flush=True)

    def progress(record):
        print(f"  [{record.source:5s}] {record.job.label()}  "
              f"({record.wall_time:.2f}s wall)", flush=True)

    with Campaign(jobs, cache=cache, warm_start=args.warm_start,
                  ladder=args.ladder, drivers=args.drivers) as campaign:
        outcome = campaign.run(progress=progress)
        # Aggregated across driver workers; must be read before close()
        # shuts the pool down and drops its snapshots.
        cache_stats = campaign.cache_stats()
    _print_rows(outcome.rows(), title)
    print(f"\njobs: {outcome.n_jobs}  solved: {outcome.runs}  "
          f"cache hits: {outcome.cache_hits}  "
          f"duplicates: {outcome.duplicates}")
    if args.drivers == 1:
        # Workspace pools live in the driver workers otherwise.
        pool = campaign.workspace_pool
        if pool is not None:
            print(f"workspace pool: {pool.created} created, "
                  f"{pool.reused} reused")
    if cache_stats is not None:
        print(f"result cache: {cache_stats['hits']} hits, "
              f"{cache_stats['misses']} misses, "
              f"{cache_stats['stores']} stores, "
              f"{cache_stats['evictions']} evictions "
              f"(hit rate {cache_stats['hit_rate']:.0%})")
    if args.telemetry_json:
        # After close(): the snapshot then includes the final
        # close-handshake telemetry of every driver worker.
        _dump_telemetry(args.telemetry_json,
                        campaign.telemetry_snapshot())
    if args.min_cache_hits and outcome.cache_hits < args.min_cache_hits:
        print(f"FAIL: expected >= {args.min_cache_hits} cache hits, "
              f"got {outcome.cache_hits}")
        return 1
    return 0


def cmd_serve(args) -> int:
    from ..service import CampaignService, ServiceDaemon

    service = CampaignService(
        cache=_build_cache(args), drivers=args.drivers,
        max_queue=args.max_queue,
    )
    daemon = ServiceDaemon(service, host=args.host, port=args.port,
                           quiet=not args.verbose)
    host, port = daemon.address
    if args.port_file:
        with open(args.port_file, "w") as fh:
            fh.write(f"{port}\n")
    print(f"campaign service listening on {daemon.url} "
          f"({args.drivers} driver(s), queue <= {args.max_queue}"
          + (f", cache at {args.cache_dir}" if args.cache_dir else "")
          + ")", flush=True)
    print("POST /shutdown (or Ctrl-C) drains in-flight work and exits",
          flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining ...", flush=True)
        service.close()
    if args.telemetry_json:
        _dump_telemetry(args.telemetry_json,
                        service.telemetry_snapshot())
    print("campaign service stopped", flush=True)
    return 0


def cmd_submit(args) -> int:
    from ..service import ServiceClient, ServiceError

    jobs, title = _matrix_jobs(args)
    rc = _reject_subfloor_tols(jobs)
    if rc:
        return rc
    client = ServiceClient(args.url)
    print(f"{title}: {len(jobs)} job(s) -> {args.url}", flush=True)
    try:
        cid = client.submit(jobs, warm_start=args.warm_start,
                            ladder=args.ladder, tag=args.tag)
        print(f"campaign {cid} accepted", flush=True)
        status = client.wait(cid, timeout=args.timeout)
        if status["status"] != "done":
            print(f"FAIL: campaign {cid} {status['status']}:")
            for branch in status["branches"]:
                if branch.get("error"):
                    print(f"  branch {branch['index']}: "
                          f"{branch['error']}")
            return 1
        results = client.results(cid)
        rc = 0
        if args.shutdown_after:
            client.shutdown()
    except ServiceError as exc:
        print(f"FAIL: {exc}")
        return 1
    _print_rows([job["row"] for job in results["jobs"]], title)
    summary = results["summary"]
    print(f"\njobs: {summary['jobs']}  solved: {summary['solved']}  "
          f"cache hits: {summary['cache_hits']}  "
          f"duplicates: {summary['duplicates']}")
    if args.expect_cached and summary["solved"]:
        print(f"FAIL: expected a fully cache-served campaign, but "
              f"{summary['solved']} job(s) solved fresh")
        rc = 1
    if args.min_cache_hits \
            and summary["cache_hits"] < args.min_cache_hits:
        print(f"FAIL: expected >= {args.min_cache_hits} cache hits, "
              f"got {summary['cache_hits']}")
        rc = 1
    return rc


def cmd_scenario(args) -> int:
    from ..scenarios import generate_script, run_scenario

    script = generate_script(
        args.seed, scheme=args.scheme, executor=args.scenario_executor,
    )
    result = run_scenario(script, dump_dir=args.dump_dir)
    print(result.summary())
    if args.telemetry_json:
        # Scenarios execute against the process-default context.
        from ..resources import default_context

        _dump_telemetry(args.telemetry_json,
                        default_context().telemetry.snapshot())
    return 0 if result.ok else 1


def cmd_timeline(args) -> int:
    import json

    from ..telemetry import render_timeline

    with open(args.path) as fh:
        snapshot = json.load(fh)
    print(render_timeline(snapshot, width=args.width))
    return 0


def cmd_replay(args) -> int:
    from ..parallel import load_trace, replay_trace

    trace = load_trace(args.path)
    recorded = [(ev.rank, ev.iteration, ev.diff)
                for ev in trace.events if ev.kind == "end"]
    print(f"{args.path}: {len(trace.peers)} peers, "
          f"{len(trace.events)} events ({len(recorded)} sweeps), "
          f"solve={trace.solve}")
    result = replay_trace(trace, executor=args.executor)
    mismatches = [
        (rank, it, rec, rep)
        for (rank, it, rec), (_r, _i, rep) in zip(recorded, result.diffs)
        if rec is not None and rec != rep
    ]
    if len(result.diffs) != len(recorded):
        print(f"FAIL: replay produced {len(result.diffs)} sweeps, "
              f"trace recorded {len(recorded)}")
        return 1
    if mismatches:
        print(f"FAIL: {len(mismatches)} sweep diff(s) diverge:")
        for rank, it, rec, rep in mismatches[:10]:
            print(f"  rank {rank} it {it}: recorded {rec!r} "
                  f"replayed {rep!r}")
        return 1
    print(f"replay on {args.executor!r} executor reproduces all "
          f"{len(recorded)} recorded sweep diffs bit-exactly")
    return 0


# -- parser -------------------------------------------------------------------------
#
# Shared flag groups are parent parsers: `campaign`, `serve` and
# `submit` accept the *same* spellings for the same concepts, and a new
# subcommand opts into a group with one parents=[...] entry instead of
# re-declaring flags.


def _flag_parents():
    alphas = argparse.ArgumentParser(add_help=False)
    alphas.add_argument(
        "--alphas", default="1,2,4,8",
        help="comma-separated machine counts (default 1,2,4,8; the "
             "paper uses 1,2,4,8,16,24)",
    )
    full = argparse.ArgumentParser(add_help=False)
    full.add_argument(
        "--full", action="store_true",
        help="run the paper's actual problem sizes (96³ / 144³)",
    )
    matrix = argparse.ArgumentParser(add_help=False)
    matrix.add_argument("--fig", type=int, choices=[5, 6], default=None,
                        help="use this figure's grid as the job matrix")
    matrix.add_argument("--n", type=int, default=None,
                        help="custom-matrix problem size (ignored with "
                             "--fig; default: the scaled fig5 size)")
    matrix.add_argument("--schemes",
                        default="synchronous,asynchronous,hybrid",
                        help="comma-separated schemes")
    matrix.add_argument("--clusters", default="1,2",
                        help="comma-separated cluster counts")
    matrix.add_argument("--deltas", default="",
                        help="comma-separated relaxation steps (delta "
                             "sweep); empty = the problem default")
    matrix.add_argument("--tol", type=float, default=1e-4)
    matrix.add_argument("--warm-start", action="store_true",
                        help="seed each delta-sweep solve from its "
                             "neighbour's solution")
    matrix.add_argument("--ladder", action="store_true",
                        help="plan a mixed-precision multigrid chain in "
                             "front of each eligible float64 job: "
                             "half-size float32 solve, interpolated "
                             "float32 warm start, float64 polish")
    solver = argparse.ArgumentParser(add_help=False)
    solver.add_argument("--dtype", default="float64",
                        choices=["float64", "float32"])
    solver.add_argument("--executor", default="inline",
                        choices=["inline", "process"])
    cache = argparse.ArgumentParser(add_help=False)
    cache.add_argument("--cache-dir", default=None,
                       help="persistent result-cache directory (created "
                            "if missing); omit for no cross-run cache")
    cache.add_argument("--cache-budget-mb", type=float, default=None,
                       help="bound the disk cache to this many MiB with "
                            "least-recently-used eviction (default: "
                            "unbounded)")
    drivers = argparse.ArgumentParser(add_help=False)
    drivers.add_argument("--drivers", type=int, default=1,
                         help="driver worker processes executing "
                              "independent campaign branches in "
                              "parallel (default 1 = sequential "
                              "in-process; results are bit-identical "
                              "either way)")
    telemetry = argparse.ArgumentParser(add_help=False)
    telemetry.add_argument(
        "--telemetry-json", metavar="PATH", default=None,
        help="write the run's merged telemetry snapshot here as JSON "
             "on exit (set REPRO_TELEMETRY=spans to include the span "
             "buffer; render with the `timeline` subcommand)")
    return alphas, full, matrix, solver, cache, drivers, telemetry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures, run "
                    "campaigns, or serve them over HTTP.",
    )
    alphas, full, matrix, solver, cache, drivers, telemetry = \
        _flag_parents()
    sub = parser.add_subparsers(dest="target", required=True,
                                metavar="target")
    sub.add_parser("table1", parents=[alphas, full],
                   help="audit Table I against live P2PSAP sessions")
    sub.add_parser("fig5", parents=[alphas, full],
                   help="regenerate Figure 5 and check its claims")
    sub.add_parser("fig6", parents=[alphas, full],
                   help="regenerate Figure 6 and check its claims")
    sub.add_parser("all", parents=[alphas, full],
                   help="table1 + fig5 + fig6")

    campaign = sub.add_parser(
        "campaign", parents=[alphas, full, matrix, solver, cache,
                             drivers, telemetry],
        help="run a job matrix through the batched campaign engine")
    campaign.add_argument("--min-cache-hits", type=int, default=0,
                          help="exit 1 when fewer jobs were served from "
                               "the cache (CI smoke assertion)")

    serve = sub.add_parser(
        "serve", parents=[cache, drivers, telemetry],
        help="start the campaign service daemon (HTTP front door)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 = ephemeral; see --port-file)")
    serve.add_argument("--port-file", default=None,
                       help="write the bound port here (for scripts "
                            "using --port 0)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="admission-queue bound in branches; past "
                            "it submissions get 503")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    submit = sub.add_parser(
        "submit", parents=[alphas, full, matrix, solver],
        help="submit a job matrix to a running campaign service")
    submit.add_argument("--url", required=True,
                        help="base URL of the daemon (e.g. "
                             "http://127.0.0.1:8765)")
    submit.add_argument("--tag", default=None,
                        help="label the submission in daemon status")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to poll before giving up")
    submit.add_argument("--min-cache-hits", type=int, default=0,
                        help="exit 1 when fewer jobs were served from "
                             "the daemon's cache")
    submit.add_argument("--expect-cached", action="store_true",
                        help="exit 1 if anything solved fresh (CI "
                             "resubmission assertion)")
    submit.add_argument("--shutdown-after", action="store_true",
                        help="POST /shutdown once results are fetched")

    scenario = sub.add_parser(
        "scenario", parents=[telemetry],
        help="run one seeded fault-injection scenario")
    scenario.add_argument("--seed", type=int, default=0,
                          help="scenario seed (the script is a pure "
                               "function of it)")
    scenario.add_argument("--scheme", default=None,
                          choices=["synchronous", "asynchronous",
                                   "hybrid"],
                          help="override the seed-derived scheme")
    scenario.add_argument("--exec", dest="scenario_executor",
                          default=None, choices=["inline", "process"],
                          help="override the seed-derived sweep "
                               "executor")
    scenario.add_argument("--dump-dir", default=None,
                          help="dump schedule traces here when an "
                               "invariant fails")

    replay = sub.add_parser(
        "replay", help="re-execute a dumped schedule trace bit-exactly")
    replay.add_argument("path", help="trace file (.npz)")
    replay.add_argument("--executor", default="inline",
                        choices=["inline", "process"])

    timeline = sub.add_parser(
        "timeline",
        help="render a --telemetry-json dump as a per-peer span "
             "timeline")
    timeline.add_argument("path", help="telemetry dump (.json)")
    timeline.add_argument("--width", type=int, default=72,
                          help="timeline lane width in characters")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "cache_budget_mb", None) is not None:
        if not args.cache_dir:
            parser.error("--cache-budget-mb requires --cache-dir "
                         "(there is no disk cache to bound without one)")
        if args.cache_budget_mb <= 0:
            parser.error("--cache-budget-mb must be positive")
    if getattr(args, "drivers", 1) < 1:
        parser.error("--drivers must be >= 1")
    if getattr(args, "max_queue", 1) < 1:
        parser.error("--max-queue must be >= 1")
    if getattr(args, "full", False):
        os.environ["REPRO_FULL"] = "1"
    if hasattr(args, "alphas"):
        args.alphas = tuple(int(a) for a in args.alphas.split(","))

    if args.target == "scenario":
        return cmd_scenario(args)
    if args.target == "replay":
        return cmd_replay(args)
    if args.target == "timeline":
        return cmd_timeline(args)
    if args.target == "campaign":
        return cmd_campaign(args)
    if args.target == "serve":
        return cmd_serve(args)
    if args.target == "submit":
        return cmd_submit(args)

    rc = 0
    if args.target in ("table1", "all"):
        rc |= cmd_table1()
    if args.target in ("fig5", "all"):
        rc |= cmd_figure(FIG5_N, args.alphas)
    if args.target in ("fig6", "all"):
        rc |= cmd_figure(FIG6_N, args.alphas)
    return rc


if __name__ == "__main__":
    sys.exit(main())
