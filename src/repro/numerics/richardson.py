"""Sequential projected Richardson — the reference solver.

Implements the paper's fixed-point iteration u ← F_δ(u) in two sweep
flavours:

``jacobi``
    the pure mapping u^{p+1} = F_δ(u^p): every sub-block updated from
    the previous iterate.  This is what α synchronized nodes compute
    collectively, so the distributed synchronous solver must match it
    plane-for-plane (a strong cross-check used by the integration
    tests).

``gauss_seidel``
    sub-blocks swept in order using already-updated planes ("the
    sub-blocks are computed sequentially at each node") — the in-node
    schedule of the distributed solver; with α = 1 the distributed
    method *is* this sweep.

The per-plane update with δ = 1/diag is the projected relaxation

    u_z ← P_K((neighbour planes + in-plane neighbours + h²·b_z) / (6 + c·h²))

familiar from Spitéri & Chau; general δ is supported for theory tests.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Callable, Literal, Optional

import numpy as np

from .convergence import DiffCriterion, ResidualHistory
from .kernels import SweepWorkspace, gauss_seidel_sweep, jacobi_sweep
from .obstacle import AUTO_HALO, ObstacleProblem
from .tolerances import min_termination_tol, resolve_dtype

__all__ = ["SolveResult", "projected_richardson", "relax_plane"]

Sweep = Literal["jacobi", "gauss_seidel"]


@dataclasses.dataclass
class SolveResult:
    """Outcome of a sequential solve."""

    u: np.ndarray
    relaxations: int
    converged: bool
    history: ResidualHistory
    delta: float

    @property
    def final_diff(self) -> float:
        return self.history.final


def relax_plane(
    problem: ObstacleProblem,
    u: np.ndarray,
    z: int,
    delta: float,
    out: np.ndarray,
    scratch: np.ndarray,
    below=AUTO_HALO,
    above=AUTO_HALO,
) -> np.ndarray:
    """One projected Richardson relaxation of sub-block z into ``out``.

    out = P_{K_z}(u_z − δ((A·u)_z − b_z)), with optional halo overrides —
    the exact F_{i,δ} of the paper with delayed components allowed.
    """
    Au_z = problem.apply_A_plane(u, z, out, scratch, below=below, above=above)
    # out currently holds (A·u)_z; turn it into the relaxed plane in place.
    out -= problem.b[z]
    out *= -delta
    out += u[z]
    return problem.constraint.project_plane(out, z, out=out)


#: Cost-model constant: cycles of useful work per grid point and
#: relaxation on the testbed's 1 GHz machines.  The stencil itself is
#: ~12 flops/point; 30 cycles/point accounts for the memory traffic and
#: projection of a 2010-era scalar implementation.  Only the absolute
#: time axis depends on this; all paper claims are about shape.
FLOPS_PER_POINT = 30.0


def projected_richardson(
    problem: ObstacleProblem,
    delta: Optional[float] = None,
    tol: float = 1e-6,
    max_relaxations: int = 200_000,
    sweep: Sweep = "gauss_seidel",
    u0: Optional[np.ndarray] = None,
    callback: Optional[Callable[[int, float], None]] = None,
    dtype=None,
) -> SolveResult:
    """Iterate u ← F_δ(u) until ‖u_new − u_old‖∞ < tol.

    One *relaxation* = one full sweep over all n sub-blocks (the paper's
    unit when it reports "number of relaxations").

    Precision and termination
    -------------------------
    ``dtype`` selects the iterate precision: float64 (default) or
    float32, which halves the memory traffic of the bandwidth-bound
    sweeps at ~half the significand.  The termination criterion compares
    the per-sweep max-norm diff — *computed in dtype* — against ``tol``:
    at float32 that diff carries ~``eps₃₂·|u| ≈ 1e-7`` of quantization
    noise, so a tolerance below
    :func:`repro.numerics.tolerances.min_termination_tol` (≈ 3.8e-6 at
    float32, ≈ 7.1e-15 at float64) cannot be resolved — the iteration
    either stops on rounding noise or runs to ``max_relaxations``.  A
    sub-floor tolerance *warns* here rather than raising: "tol far below
    reachable, run exactly ``max_relaxations`` sweeps" is a legitimate
    idiom for this entry point, which returns ``converged=False``
    cleanly at the cap.  The distributed solver
    (:mod:`repro.solvers.distributed_richardson`) rejects sub-floor
    tolerances outright instead — there the same mistake stalls a whole
    simulated peer network.  ``u0`` is cast to ``dtype`` here, at the
    entry point; everything past it is dtype-checked, not cast.
    """
    if delta is None:
        delta = problem.jacobi_delta()
    if delta <= 0:
        raise ValueError("delta must be positive")
    if sweep not in ("jacobi", "gauss_seidel"):
        raise ValueError(f"unknown sweep {sweep!r}")
    dtype = resolve_dtype(dtype)
    floor = min_termination_tol(dtype)
    if tol < floor:
        warnings.warn(
            f"tol={tol:g} is below the {dtype.name} termination floor "
            f"{floor:g}: consecutive-iterate diffs computed in {dtype.name} "
            "cannot resolve it, so the solve will run to max_relaxations "
            "(see repro.numerics.tolerances)",
            RuntimeWarning,
            stacklevel=2,
        )
    grid = problem.grid
    u = (problem.feasible_start() if u0 is None else u0).astype(dtype)
    grid.validate_field(u, "u0")

    criterion = DiffCriterion(tol)
    history = ResidualHistory()
    ws = SweepWorkspace(problem, delta, dtype=dtype)
    kernel = jacobi_sweep if sweep == "jacobi" else gauss_seidel_sweep
    # Buffer rotation: the kernel writes the new iterate into the spare
    # array and the two swap roles every relaxation (no plane copies).
    u_next = ws.rotation_buffer()

    for relaxation in range(1, max_relaxations + 1):
        diff = kernel(ws, u, u_next)
        u, u_next = u_next, u
        history.append(diff)
        if callback is not None:
            callback(relaxation, diff)
        if criterion.check(diff):
            return SolveResult(u, relaxation, True, history, delta)
    return SolveResult(u, max_relaxations, False, history, delta)
