"""The 3-D obstacle problem: operator, data, and canonical instances.

Discretizing the obstacle problem on the unit cube with the 7-point
Laplacian yields the fixed-point problem (1)-(2) of the paper:

    find u* ∈ K  with  u* = P_K(u* − δ(A·u* − b))

where A is the (SPD, M-matrix) discrete operator −Δ + c·I, b collects
the source term, and K is a pointwise box.  The operator satisfies the
paper's condition (2) — it is an M-matrix-generating block operator —
which is what makes parallel *asynchronous* projected Richardson
converge (Spitéri & Chau 2002).

The obstacle problem "occurs in many domains like mechanics and
financial mathematics, e.g. options pricing"; the canonical instances
below cover both motivations plus the plain membrane benchmark used for
the experiments.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from .grid import Grid3D
from .projection import BoxConstraint

__all__ = [
    "ObstacleProblem",
    "membrane_problem",
    "torsion_problem",
    "options_pricing_problem",
    "AUTO_HALO",
]

#: Sentinel for apply_A_plane's below/above: "derive from u itself".
#: Distinct from None, which means "zero Dirichlet boundary".
AUTO_HALO = object()


def _neighbor_sum_2d(p: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Sum of the 4 in-plane neighbours with zero (Dirichlet) boundary.

    Writes into ``out`` (no allocation in the hot loop).
    """
    out.fill(0.0)
    out[1:, :] += p[:-1, :]
    out[:-1, :] += p[1:, :]
    out[:, 1:] += p[:, :-1]
    out[:, :-1] += p[:, 1:]
    return out


@dataclasses.dataclass
class ObstacleProblem:
    """A·u = (−Δ + c·I)u over the grid, with box constraints K and data b.

    Attributes
    ----------
    grid:
        The discretization.
    b:
        Right-hand side field (n, n, n); includes the source term f.
    constraint:
        The convex set K (pointwise box).
    c:
        Zeroth-order coefficient ≥ 0 (adds c·I to −Δ; used by the
        options-pricing instance where it plays the discount rate).
    name:
        Label used by the experiment harness.
    """

    grid: Grid3D
    b: np.ndarray
    constraint: BoxConstraint
    c: float = 0.0
    name: str = "obstacle"

    def __post_init__(self) -> None:
        self.grid.validate_field(self.b, "b")
        if self.c < 0:
            raise ValueError("zeroth-order coefficient c must be >= 0")

    # -- operator ------------------------------------------------------------

    @property
    def diag(self) -> float:
        """Diagonal entry of A: 6/h² + c."""
        h = self.grid.h
        return 6.0 / (h * h) + self.c

    def lambda_max_bound(self) -> float:
        """Upper bound on the spectrum of A (Gershgorin): 12/h² + c."""
        h = self.grid.h
        return 12.0 / (h * h) + self.c

    def lambda_min(self) -> float:
        """Smallest eigenvalue of A: 3·(2/h² )(1−cos(πh)) + c, exact for
        the 7-point Laplacian on the cube."""
        h = self.grid.h
        return 3.0 * (2.0 / (h * h)) * (1.0 - np.cos(np.pi * h)) + self.c

    def optimal_delta(self) -> float:
        """δ maximizing the Richardson contraction: 2/(λmin + λmax)."""
        return 2.0 / (self.lambda_min() + self.lambda_max_bound())

    def jacobi_delta(self) -> float:
        """δ = 1/diag: the projected-Jacobi step the paper's relaxations
        use (each sub-block relaxation solves its diagonal exactly)."""
        return 1.0 / self.diag

    def apply_A(self, u: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """A·u over the whole grid (zero Dirichlet boundary).

        Vectorized over all planes at once; the per-point operation
        order matches :meth:`apply_A_plane` exactly, so slicing this
        result equals the plane-by-plane reference bit-for-bit.
        """
        self.grid.validate_field(u, "u")
        h2 = self.grid.h ** 2
        if out is None:
            out = np.empty_like(u)
        nb = np.zeros_like(u)
        nb[:, 1:, :] += u[:, :-1, :]
        nb[:, :-1, :] += u[:, 1:, :]
        nb[:, :, 1:] += u[:, :, :-1]
        nb[:, :, :-1] += u[:, :, 1:]
        np.multiply(u, 6.0 + self.c * h2, out=out)
        out -= nb
        out[1:] -= u[:-1]
        out[:-1] -= u[1:]
        out /= h2
        return out

    def apply_A_plane(
        self,
        u,
        z: int,
        out: np.ndarray,
        scratch: Optional[np.ndarray] = None,
        below=AUTO_HALO,
        above=AUTO_HALO,
    ) -> np.ndarray:
        """(A·u)_z for sub-block z.

        ``below``/``above`` override the z−1 / z+1 planes — this is the
        hook the distributed solver uses to substitute *received* halo
        planes (possibly delayed iterates, eq. (5)) for local data.
        Pass ``None`` explicitly for the zero Dirichlet boundary; the
        default :data:`AUTO_HALO` reads the planes from ``u`` itself.
        """
        n = self.grid.n
        h2 = self.grid.h ** 2
        plane = u[z]
        if scratch is None:
            scratch = np.empty((n, n))
        nb = _neighbor_sum_2d(plane, scratch)
        if below is AUTO_HALO:
            below = u[z - 1] if z > 0 else None
        if above is AUTO_HALO:
            above = u[z + 1] if z < n - 1 else None
        # out = ((6 + c·h²)·u_z − in-plane − below − above) / h²
        np.multiply(plane, 6.0 + self.c * h2, out=out)
        out -= nb
        if below is not None:
            out -= below
        if above is not None:
            out -= above
        out /= h2
        return out

    # -- fixed point mapping -------------------------------------------------------

    def fixed_point_map(self, u: np.ndarray, delta: float,
                        out: Optional[np.ndarray] = None) -> np.ndarray:
        """F_δ(u) = P_K(u − δ(A·u − b)), the whole-vector (Jacobi) map."""
        Au = self.apply_A(u)
        v = u - delta * (Au - self.b)
        return self.constraint.project(v, out=out)

    def residual_norm(self, u: np.ndarray, delta: Optional[float] = None) -> float:
        """‖u − F_δ(u)‖∞ — zero exactly at the solution of (1)."""
        if delta is None:
            delta = self.jacobi_delta()
        return float(np.max(np.abs(u - self.fixed_point_map(u, delta))))

    def complementarity_error(self, u: np.ndarray) -> float:
        """Max violation of the LCP conditions at u:

        feasibility (u ∈ K), nonnegative residual off the contact set,
        and (A·u − b) ⊥ (u − obstacle) on it.
        """
        r = self.apply_A(u) - self.b
        worst = self.constraint.violation(u)
        lo, up = self.constraint.lower, self.constraint.upper
        if lo is None and up is None:
            return max(worst, float(np.max(np.abs(r))))
        # Where strictly inside K the residual must vanish; at the lower
        # obstacle r ≥ 0; at the upper obstacle r ≤ 0.
        interior = np.ones_like(u, dtype=bool)
        if lo is not None:
            at_lower = np.isclose(u, np.broadcast_to(lo, u.shape), atol=1e-9)
            interior &= ~at_lower
            worst = max(worst, float(np.max(-r[at_lower], initial=0.0)))
        if up is not None:
            at_upper = np.isclose(u, np.broadcast_to(up, u.shape), atol=1e-9)
            interior &= ~at_upper
            worst = max(worst, float(np.max(r[at_upper], initial=0.0)))
        worst = max(worst, float(np.max(np.abs(r[interior]), initial=0.0)))
        return worst

    def feasible_start(self) -> np.ndarray:
        """An initial iterate inside K (projection of zero)."""
        return self.constraint.project(self.grid.zeros())


# -- canonical instances ------------------------------------------------------------


def membrane_problem(n: int, bump_height: float = 0.4,
                     bump_radius: float = 0.35) -> ObstacleProblem:
    """Elastic membrane stretched over a spherical bump obstacle.

    No load (f = 0); the lower obstacle is a paraboloid-capped bump that
    pokes through the flat rest position, producing a genuine contact
    region surrounded by a harmonic "skirt".  The default experiment
    workload.
    """
    grid = Grid3D(n)
    z, y, x = grid.coordinates()
    r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2
    phi = bump_height * (1.0 - r2 / bump_radius**2)
    # Keep the obstacle below the boundary condition (0) near the walls
    # so K is compatible with u|∂Ω = 0.
    return ObstacleProblem(
        grid=grid,
        b=grid.zeros(),
        constraint=BoxConstraint(lower=phi),
        name=f"membrane-{n}",
    )


def torsion_problem(n: int, twist: float = 10.0) -> ObstacleProblem:
    """Elasto-plastic torsion of a bar (the mechanics motivation).

    −Δu = 2θ with |u| ≤ dist(x, ∂Ω) — a two-sided obstacle whose active
    set is the plastic region.  Distance is to the unit-cube boundary.
    """
    grid = Grid3D(n)
    z, y, x = grid.coordinates()
    dist = np.minimum.reduce([x, 1 - x, y, 1 - y, z, 1 - z])
    return ObstacleProblem(
        grid=grid,
        b=grid.full(2.0 * twist),
        constraint=BoxConstraint(lower=-dist, upper=dist),
        name=f"torsion-{n}",
    )


def options_pricing_problem(n: int, strike: float = 0.5,
                            rate: float = 0.2) -> ObstacleProblem:
    """American-option-style pricing LCP (the financial motivation).

    A stationary three-asset complementarity problem: diffusion with a
    discount term (−Δ + r)u ≥ 0, u ≥ payoff, complementarity.  The
    payoff is a basket put max(strike − mean(x), 0), giving an exercise
    (contact) region near the low-price corner.
    """
    grid = Grid3D(n)
    z, y, x = grid.coordinates()
    payoff = np.maximum(strike - (x + y + z) / 3.0, 0.0)
    # Keep compatibility with zero boundary values by tapering the payoff
    # with the distance to the boundary.
    taper = np.minimum.reduce([x, 1 - x, y, 1 - y, z, 1 - z]) * 6.0
    payoff = np.minimum(payoff, taper)
    return ObstacleProblem(
        grid=grid,
        b=grid.zeros(),
        constraint=BoxConstraint(lower=payoff),
        c=rate,
        name=f"options-{n}",
    )
