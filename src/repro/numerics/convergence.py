"""Stopping criteria and residual histories.

The classic criterion for relaxation methods — and the practical one for
the paper's distributed runs — is the max-norm difference between
successive iterates falling below a tolerance.  For the *asynchronous*
schemes a local criterion alone is unsafe (a peer may be momentarily
converged on stale neighbour data), which is why the distributed
termination detector in :mod:`repro.solvers.termination` requires
sustained, simultaneous local convergence; the pieces here are the local
building blocks.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

__all__ = ["DiffCriterion", "ResidualHistory", "max_diff"]


@dataclasses.dataclass
class DiffCriterion:
    """‖u_new − u_old‖∞ < tol, optionally required for several
    consecutive checks (hysteresis against async flutter)."""

    tol: float
    consecutive: int = 1

    def __post_init__(self) -> None:
        if self.tol <= 0:
            raise ValueError("tolerance must be positive")
        if self.consecutive < 1:
            raise ValueError("consecutive must be >= 1")
        self._streak = 0

    def check(self, diff_norm: float) -> bool:
        """Feed one observation; True once the streak is long enough."""
        if not math.isfinite(diff_norm):
            raise ValueError(f"non-finite diff norm {diff_norm!r} (diverged?)")
        if diff_norm < self.tol:
            self._streak += 1
        else:
            self._streak = 0
        return self._streak >= self.consecutive

    def reset(self) -> None:
        self._streak = 0

    @property
    def streak(self) -> int:
        return self._streak


def max_diff(a: np.ndarray, b: np.ndarray) -> float:
    """‖a − b‖∞ without intermediates beyond one temp."""
    return float(np.max(np.abs(a - b))) if a.size else 0.0


@dataclasses.dataclass
class ResidualHistory:
    """Convergence trace of one run (feeds EXPERIMENTS.md tables)."""

    values: list[float] = dataclasses.field(default_factory=list)

    def append(self, value: float) -> None:
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def final(self) -> float:
        if not self.values:
            raise LookupError("empty history")
        return self.values[-1]

    def asymptotic_rate(self, tail: int = 10) -> Optional[float]:
        """Geometric mean contraction over the last ``tail`` steps."""
        vals = [v for v in self.values[-(tail + 1):] if v > 0]
        if len(vals) < 2:
            return None
        ratios = [vals[i + 1] / vals[i] for i in range(len(vals) - 1)]
        return float(np.exp(np.mean(np.log(ratios))))

    def monotone(self, slack: float = 1e-12) -> bool:
        """Whether the trace is non-increasing (true for sync Richardson
        from a feasible start; async may flutter)."""
        return all(
            b <= a + slack for a, b in zip(self.values, self.values[1:])
        )
