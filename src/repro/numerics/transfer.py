"""Grid transfer operators for the mixed-precision multigrid ladder.

The campaign ladder solves a coarse instance of the obstacle problem
first and uses its (cheap) solution as the warm start of the fine
instance: coarse-n float32 solve → trilinear prolongation onto the fine
grid → float32 fine sweeps → float64 polish.  This module is the
transfer piece — resampling a field between two :class:`~.grid.Grid3D`
discretizations of the unit cube.

Both grids place their interior points at ``(i+1)·h`` with
``h = 1/(n+1)`` (zero Dirichlet boundary at 0 and 1), so no nesting
relation between the sizes is required: :func:`prolong` evaluates the
separable trilinear interpolant of the coarse field at the fine
interior points, and :func:`restrict` is the same sampling in the
other direction (a diagnostic, not part of the solve path).

Boundary handling is explicit.  The default (``boundary=0.0``) extends
the source field with the zero Dirichlet planes the obstacle problem
actually has — the interpolant then *is* a function vanishing on ∂Ω,
which is what makes the prolonged iterate an admissible warm start.
``boundary="extrapolate"`` extends linearly instead, making the
operator exact on arbitrary trilinear fields all the way to the walls
(the property the test suite pins down; with zero padding, exactness
holds at every fine point inside the coarse hull ``[h_c, 1−h_c]³``).

All interpolation arithmetic runs in float64 regardless of the input
dtype, then casts once at the end — the operator is deterministic
(bit-reproducible across executors and dtypes of the surrounding
solve), which the ladder's cache keying relies on.

:data:`TRANSFER_VERSION` names the operator's semantics; the campaign
engine folds it into the cache signature of every ladder-dependent job,
so changing the interpolation here can never serve a stale warm-started
result from an old cache directory.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .tolerances import resolve_dtype

__all__ = [
    "TRANSFER_VERSION",
    "prolong",
    "restrict",
    "prolong_iterate",
]

#: Version of the transfer operator's semantics.  Bump on any change to
#: the interpolation scheme or boundary handling: the campaign engine
#: keys ladder results on it, so old cache entries miss instead of
#: seeding solves with a differently-interpolated iterate.
TRANSFER_VERSION = 1

BoundaryRule = Union[float, str]


def _check_cube(u: np.ndarray, name: str) -> int:
    if u.ndim != 3 or len(set(u.shape)) != 1:
        raise ValueError(
            f"{name} must be a cubic (n, n, n) field, got shape {u.shape}"
        )
    return u.shape[0]


def _axis_interp(n_src: int, n_dst: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-axis interpolation stencil: destination interior point j sits
    between extended-source slots ``i0[j]`` and ``i0[j]+1`` with weight
    ``w[j]`` on the upper one.

    Extended-source coordinates are ``i·h_src`` for ``i = 0..n_src+1``
    (boundary slots included), so ``t = x/h_src`` is the fractional slot
    index of destination coordinate x.
    """
    h_src = 1.0 / (n_src + 1)
    h_dst = 1.0 / (n_dst + 1)
    x = (np.arange(n_dst) + 1) * h_dst
    t = x / h_src
    i0 = np.floor(t).astype(np.intp)
    # x < 1 ⇒ t < n_src+1, but guard the floor against rounding at the
    # last point so i0+1 never indexes past the upper boundary slot.
    np.clip(i0, 0, n_src, out=i0)
    w = t - i0
    return i0, w


def _extrapolate_axis(ext: np.ndarray, axis: int) -> None:
    """Fill the two boundary slots along ``axis`` by linear
    extrapolation from the adjacent interior slots."""
    index = [slice(None)] * 3

    def at(i: int) -> tuple:
        sel = list(index)
        sel[axis] = i
        return tuple(sel)

    ext[at(0)] = 2.0 * ext[at(1)] - ext[at(2)]
    ext[at(-1)] = 2.0 * ext[at(-2)] - ext[at(-3)]


def _resample(u: np.ndarray, n_dst: int, boundary: BoundaryRule) -> np.ndarray:
    """Trilinear resampling of cubic field ``u`` onto the ``n_dst`` grid
    (float64 arithmetic; see the module docstring for ``boundary``)."""
    n_src = u.shape[0]
    ext = np.zeros((n_src + 2,) * 3, dtype=np.float64)
    ext[1:-1, 1:-1, 1:-1] = u
    if boundary == "extrapolate":
        if n_src < 2:
            raise ValueError(
                "boundary='extrapolate' needs at least 2 interior points "
                f"per axis, got {n_src}"
            )
        # Axis by axis: after the first pass the face planes are filled,
        # so the later passes extrapolate edges and corners consistently
        # (the composition is exact for trilinear fields).
        for axis in (0, 1, 2):
            _extrapolate_axis(ext, axis)
    elif boundary != 0.0:
        raise ValueError(
            f"boundary must be 0.0 (zero Dirichlet) or 'extrapolate', "
            f"got {boundary!r}"
        )
    out = ext
    for axis in (0, 1, 2):
        out = np.moveaxis(out, axis, 0)
        i0, w = _axis_interp(n_src, n_dst)
        shape_w = (n_dst,) + (1,) * (out.ndim - 1)
        w = w.reshape(shape_w)
        out = out[i0] * (1.0 - w) + out[i0 + 1] * w
        out = np.moveaxis(out, 0, axis)
    return out


def prolong(
    u_coarse: np.ndarray,
    n_fine: int,
    *,
    boundary: BoundaryRule = 0.0,
    dtype=None,
) -> np.ndarray:
    """Trilinear prolongation of a coarse cubic field onto the
    ``n_fine`` grid.

    ``dtype=None`` keeps the input's dtype (which must be one of the
    supported solve dtypes); arithmetic is always float64 internally.
    Exact on trilinear fields (everywhere with
    ``boundary="extrapolate"``; inside the coarse hull with the zero
    Dirichlet default), and exact — bit-for-bit — at fine points that
    coincide with coarse points.
    """
    u = np.asarray(u_coarse)
    n_coarse = _check_cube(u, "u_coarse")
    if n_fine < 1:
        raise ValueError(f"n_fine must be >= 1, got {n_fine}")
    out_dtype = resolve_dtype(u.dtype if dtype is None else dtype)
    out = _resample(u.astype(np.float64, copy=False), n_fine, boundary)
    return np.ascontiguousarray(out, dtype=out_dtype)


def restrict(
    u_fine: np.ndarray,
    n_coarse: int,
    *,
    boundary: BoundaryRule = 0.0,
    dtype=None,
) -> np.ndarray:
    """Trilinear restriction (sampling) of a fine cubic field at the
    ``n_coarse`` grid points — the diagnostic inverse of
    :func:`prolong`: ``restrict(prolong(u, m), n)`` reproduces ``u``
    for trilinear fields."""
    u = np.asarray(u_fine)
    _check_cube(u, "u_fine")
    if n_coarse < 1:
        raise ValueError(f"n_coarse must be >= 1, got {n_coarse}")
    out_dtype = resolve_dtype(u.dtype if dtype is None else dtype)
    out = _resample(u.astype(np.float64, copy=False), n_coarse, boundary)
    return np.ascontiguousarray(out, dtype=out_dtype)


def prolong_iterate(u_coarse: np.ndarray, problem, dtype) -> np.ndarray:
    """A coarse iterate as a feasible warm start for ``problem``.

    Prolongs with the zero-Dirichlet boundary (the obstacle problem's
    actual boundary condition), casts to the solve ``dtype``, and
    projects onto the problem's constraint set *in that dtype* — the
    projection bounds are cast the same way the dtype-parameterized
    solver casts its problem data, so the seed is exactly feasible for
    the sweeps that will consume it (a float64-projected value can
    round back across the obstacle when narrowed to float32).
    """
    out_dtype = resolve_dtype(dtype)
    out = prolong(np.asarray(u_coarse), problem.grid.n, boundary=0.0,
                  dtype=out_dtype)
    constraint = problem.constraint
    if not constraint.is_trivial:
        lower: Optional[np.ndarray] = None
        upper: Optional[np.ndarray] = None
        if constraint.lower is not None:
            lower = np.asarray(constraint.lower, dtype=out_dtype)
        if constraint.upper is not None:
            upper = np.asarray(constraint.upper, dtype=out_dtype)
        np.clip(out, lower, upper, out=out)
    return out
