"""Block decomposition of the iterate vector.

"Let n³ denote the number of discretization points, the iterate vector
is decomposed into n sub-blocks of n² points.  The sub-blocks are
assigned to α nodes with α ≤ n.  The sub-blocks are computed
sequentially at each node."

Sub-block i is z-plane ``u[i]``.  Node k owns the contiguous plane range
[first(k), last(k)] (Figure 4's U_f(k) .. U_l(k)); neighbours exchange
their boundary planes.  :func:`partition_planes` distributes n planes
over α nodes as evenly as possible; :class:`BlockAssignment` answers all
the ownership/neighbour queries the solver and the load balancer need.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Sequence

__all__ = ["partition_planes", "weighted_partition", "BlockAssignment"]


def partition_planes(n_planes: int, n_nodes: int) -> list[range]:
    """Contiguous, balanced ranges: the first ``n_planes % n_nodes`` nodes
    get one extra plane.

    >>> [list(r) for r in partition_planes(5, 2)]
    [[0, 1, 2], [3, 4]]
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if n_planes < n_nodes:
        raise ValueError(
            f"cannot give {n_nodes} nodes at least one of {n_planes} planes "
            "(the paper requires α ≤ n)"
        )
    base, extra = divmod(n_planes, n_nodes)
    out: list[range] = []
    start = 0
    for k in range(n_nodes):
        size = base + (1 if k < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


def weighted_partition(n_planes: int, weights: Sequence[float]) -> list[range]:
    """Contiguous ranges proportional to node weights (relative speeds).

    Used by the load-balancing extension: a peer twice as fast gets about
    twice the planes, every peer gets at least one.
    """
    n_nodes = len(weights)
    if n_nodes < 1:
        raise ValueError("need at least one weight")
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")
    if n_planes < n_nodes:
        raise ValueError("more nodes than planes")
    total = float(sum(weights))
    # Largest-remainder apportionment with a floor of 1 plane each.
    ideal = [n_planes * w / total for w in weights]
    counts = [max(1, int(x)) for x in ideal]
    while sum(counts) > n_planes:
        # Shrink the node with the largest overshoot (but never below 1).
        over = [(counts[i] - ideal[i], i) for i in range(n_nodes) if counts[i] > 1]
        _, i = max(over)
        counts[i] -= 1
    remainders = sorted(
        range(n_nodes), key=lambda i: ideal[i] - counts[i], reverse=True
    )
    j = 0
    while sum(counts) < n_planes:
        counts[remainders[j % n_nodes]] += 1
        j += 1
    out: list[range] = []
    start = 0
    for size in counts:
        out.append(range(start, start + size))
        start += size
    return out


@dataclasses.dataclass(frozen=True)
class BlockAssignment:
    """Ownership map of planes to nodes."""

    n_planes: int
    ranges: tuple[range, ...]

    @classmethod
    def balanced(cls, n_planes: int, n_nodes: int) -> "BlockAssignment":
        return cls(n_planes, tuple(partition_planes(n_planes, n_nodes)))

    @classmethod
    def weighted(cls, n_planes: int, weights: Sequence[float]) -> "BlockAssignment":
        return cls(n_planes, tuple(weighted_partition(n_planes, weights)))

    def __post_init__(self) -> None:
        covered = [p for r in self.ranges for p in r]
        if covered != list(range(self.n_planes)):
            raise ValueError("ranges must tile [0, n_planes) contiguously")
        if any(len(r) == 0 for r in self.ranges):
            raise ValueError("every node needs at least one plane")
        # Range starts, sorted by construction: ownership lookups (one
        # per exchanged plane on the solver's hot path) bisect these
        # instead of scanning all α ranges.
        object.__setattr__(
            self, "_starts", tuple(r.start for r in self.ranges)
        )

    @property
    def n_nodes(self) -> int:
        return len(self.ranges)

    def owner(self, plane: int) -> int:
        """Which node owns ``plane`` (O(log α) bisection)."""
        if not 0 <= plane < self.n_planes:
            raise IndexError(f"plane {plane} out of range")
        return bisect.bisect_right(self._starts, plane) - 1

    def first(self, node: int) -> int:
        """U_f(k): the node's first plane (Figure 4)."""
        return self.ranges[node].start

    def last(self, node: int) -> int:
        """U_l(k): the node's last plane (Figure 4)."""
        return self.ranges[node].stop - 1

    def planes(self, node: int) -> range:
        return self.ranges[node]

    def neighbors(self, node: int) -> list[int]:
        """Adjacent nodes in the 1-D chain (1 for the ends, else 2).

        "nodes 1 and α ... have only one neighbor" — the source of the
        faster end-node iteration rates in the asynchronous runs.
        """
        out = []
        if node > 0:
            out.append(node - 1)
        if node < self.n_nodes - 1:
            out.append(node + 1)
        return out

    def load(self, node: int) -> int:
        return len(self.ranges[node])

    def describe(self) -> str:
        return " | ".join(
            f"node{k}:[{r.start}..{r.stop - 1}]" for k, r in enumerate(self.ranges)
        )
