"""Fused, cache-blocked relaxation kernels for the projected Richardson sweep.

The reference implementation (:func:`repro.numerics.richardson.relax_plane`)
relaxes one z-plane at a time with per-plane temporaries.  That shape is
convenient for the theory tests but leaves a lot of throughput on the
table: every plane pays ~10 NumPy dispatches plus two fresh allocations,
and the whole-grid passes of a naive vectorization stream every
intermediate through DRAM.  The kernels here fuse the relaxation

    u_z ← P_{K_z}(u_z − δ((A·u)_z − b_z))

into a handful of ``out=``-rewritten ufunc passes over *slabs* of a few
planes, sized so the slab scratch stays cache-resident:

``jacobi_sweep``
    the whole-grid Jacobi map u^{p+1} = F_δ(u^p), one fused stencil
    expression + projection + in-place max-diff, no per-plane Python
    loop;

``gauss_seidel_sweep``
    the paper's in-node plane-sequential order.  Everything that does
    not depend on already-updated planes (the in-plane and above
    neighbour contributions) is precomputed vectorized into a staging
    array; the sequential part is then three dispatches per plane;

``block_sweep``
    the distributed solver's variant: either order on a block of planes
    ``[lo, hi)`` with ghost planes standing in for the neighbours'
    boundary sub-blocks (possibly delayed iterates, eq. (5)).

All three share the same slab internals, so the sequential whole-grid
sweeps and a single full-domain block produce bit-identical iterates —
the cross-checks in the test-suite rely on that.

Workspace / aliasing contract
-----------------------------
A :class:`SweepWorkspace` owns every scratch buffer a sweep needs and is
built once per (problem, delta, plane-range).  The kernels allocate
nothing.  Rules callers must follow:

- ``cur`` and ``nxt`` are distinct C-contiguous ``(hi−lo, n, n)``
  arrays; the kernels read ``cur``, fully overwrite ``nxt``, and never
  touch ``cur``.  Callers implement buffer rotation by swapping the two
  references after each sweep (no plane copies anywhere).
- Ghost planes must not alias ``nxt``; they are read-only inputs.
- A workspace must not be shared by two sweeps running concurrently
  (its slab scratch is reused), nor reused after ``delta`` changes —
  build a new one, the affine coefficients are baked in.

Two exact-arithmetic fast paths matter in practice: with the paper's
δ = 1/diag the coefficient on the central value, 1 − δ·(6+c·h²)/h²,
evaluates to exactly 0.0, and for the canonical problems b is constant
(often 0), so the kernels skip whole passes without changing a single
bit of the result.

Precision (dtype)
-----------------
A workspace is parameterized by ``dtype`` — ``float64`` (the default,
bit-identical to the historical behaviour) or ``float32``, which halves
the memory traffic of every bandwidth-bound sweep.  The dtype is a
property of the *buffers*: every plane array a kernel touches (``cur``,
``nxt``, ghosts, the slab scratch, the staged constraint/rhs fields)
must carry the workspace dtype, and the kernels validate that instead
of letting ufunc casting silently promote a sweep back to float64 (or
round a float64 ghost into a float32 slot).  The affine coefficients
stay Python floats: under NumPy's weak-scalar promotion they compute in
the buffer dtype without widening it.  Per-dtype equivalence bounds
live in :mod:`repro.numerics.tolerances`.
"""

from __future__ import annotations

import os
import time
from typing import Optional

import numpy as np

from ..resources import default_context, resolve_context
from .obstacle import ObstacleProblem, membrane_problem
from .tolerances import check_dtype, resolve_dtype

__all__ = [
    "SweepWorkspace",
    "jacobi_sweep",
    "gauss_seidel_sweep",
    "block_sweep",
    "autotune_slab_bytes",
    "clear_slab_autotune",
    "seed_slab_autotune",
    "checkout_workspace",
    "checkin_workspace",
    "set_workspace_pool",
]

#: Fallback target size (bytes) of the per-slab working set; slabs are
#: sized so roughly three slab-arrays fit in L2 together.  This is also
#: the first auto-tuning candidate — see :func:`autotune_slab_bytes`.
_SLAB_TARGET_BYTES = 1 << 20

#: Environment override for the slab working-set target, in bytes.
_SLAB_ENV = "REPRO_SLAB_BYTES"

#: The two candidate working-set targets the auto-tuner times on first
#: use: the conservative 1 MiB guess (shared or small L2) and a roomier
#: 2 MiB target (typical per-core L2 on recent x86/ARM server parts,
#: where larger slabs mean fewer slab-boundary passes).
_SLAB_CANDIDATES = (1 << 20, 1 << 21)


class _KernelProbe:
    """Pre-resolved telemetry handles for the sweep hot path.

    Built once per workspace (when the owning context's telemetry is
    enabled) so a sweep pays two perf-counter reads plus one counter and
    one histogram update — no name/label resolution per call.  The
    overhead of this default-on path is gated at ≤3% by the
    ``telemetry_overhead`` section of ``BENCH_micro.json``.
    """

    __slots__ = ("sweeps", "seconds", "rebinds")

    def __init__(self, telemetry):
        self.sweeps = {
            order: telemetry.counter("repro_kernel_sweeps_total", order=order)
            for order in ("jacobi", "gauss_seidel")}
        self.seconds = {
            order: telemetry.histogram("repro_kernel_sweep_seconds",
                                       order=order)
            for order in ("jacobi", "gauss_seidel")}
        self.rebinds = telemetry.counter("repro_workspace_rebinds_total")

    def sweep_done(self, order, elapsed):
        self.sweeps[order].inc()
        self.seconds[order].observe(elapsed)

def _slab_target_bytes(resources=None) -> int:
    """The slab working-set target, honoring ``REPRO_SLAB_BYTES``.

    The override must parse as a positive integer (plain, or 0x/0o/0b
    prefixed); anything else raises ``ValueError`` rather than silently
    mis-sizing every sweep.  Read per workspace construction, so tests
    and long-running processes can adjust it without reimporting.  When
    the override is *not* set, the first construction triggers a one-off
    measurement of the candidate targets (:func:`autotune_slab_bytes`)
    and the winner is used for the rest of ``resources``' lifetime.
    """
    raw = os.environ.get(_SLAB_ENV)
    if raw is None or raw.strip() == "":
        return autotune_slab_bytes(resources)
    try:
        value = int(raw, 0)
    except ValueError:
        raise ValueError(
            f"{_SLAB_ENV} must be an integer byte count, got {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError(f"{_SLAB_ENV} must be positive, got {value}")
    return value


def autotune_slab_bytes(resources=None) -> int:
    """The slab target for ``resources``: measured once, then cached.

    When ``REPRO_SLAB_BYTES`` is set its value seeds the choice and the
    measurement is skipped entirely.  Otherwise each candidate in
    ``_SLAB_CANDIDATES`` is timed on a small synthetic sweep (best of a
    few runs, so one scheduler hiccup cannot crown the wrong winner) and
    the fastest wins.  The verdict lives on the resolved
    :class:`~repro.resources.ResourceContext`; a fresh context inherits
    the default context's verdict when one exists (the measurement is a
    property of the hardware, not of any context) but a context that
    measures for itself never writes the default — campaign execution
    stays out of the module-global state.  The verdict only ever affects
    *performance*: slab partitioning is bit-transparent to the sweep
    results, so tuning can never change an iterate.  Worker processes
    never re-measure: the pool creator resolves the verdict first and
    ships it in the spawn arguments (:func:`seed_slab_autotune`).
    """
    raw = os.environ.get(_SLAB_ENV)
    if raw is not None and raw.strip() != "":
        return _slab_target_bytes(resources)
    ctx = resolve_context(resources)
    if ctx.slab_bytes is not None:
        return ctx.slab_bytes
    default = default_context()
    if ctx is not default and default.slab_bytes is not None:
        ctx.slab_bytes = default.slab_bytes
        return ctx.slab_bytes
    ctx.slab_bytes = _measure_slab_candidates()
    return ctx.slab_bytes


def clear_slab_autotune(resources=None) -> None:
    """Forget ``resources``' cached auto-tuning verdict (test isolation
    hook; other contexts keep theirs)."""
    resolve_context(resources).slab_bytes = None


def seed_slab_autotune(value: int, resources=None) -> None:
    """Install a known tuning verdict on ``resources`` without measuring.

    Worker processes call this with the creator's verdict (shipped in
    the spawn arguments) so no worker ever re-measures — regardless of
    multiprocessing start method; under ``spawn``/``forkserver`` the
    module state is *not* inherited, only fork gets it for free.
    """
    if value <= 0:
        raise ValueError(f"slab target must be positive, got {value}")
    resolve_context(resources).slab_bytes = int(value)


def _measure_slab_candidates(n: int = 48, repeats: int = 3) -> int:
    """Time one Jacobi sweep per candidate target; return the winner.

    The tuning grid is sized so the candidates actually disagree (at
    48³/float64 the block exceeds the smaller target's cache budget but
    fits the larger one's) while one sweep stays ~1 ms — the whole
    measurement is a few tens of milliseconds, paid once per process.
    """
    problem = membrane_problem(n)
    delta = problem.jacobi_delta()
    u0 = problem.feasible_start()
    best_target = _SLAB_CANDIDATES[0]
    best_time = float("inf")
    for target in _SLAB_CANDIDATES:
        # Explicit slab argument: no recursion into the tuner.
        ws = SweepWorkspace(problem, delta,
                            slab=_default_slab(n, n, 8, target=target))
        nxt = ws.rotation_buffer()
        jacobi_sweep(ws, u0, nxt)  # warm-up (page faults, caches)
        elapsed = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            jacobi_sweep(ws, u0, nxt)
            elapsed = min(elapsed, time.perf_counter() - t0)
        if elapsed < best_time:
            best_time = elapsed
            best_target = target
    return best_target


def _default_slab(n: int, n_planes: int, itemsize: int = 8,
                  target: Optional[int] = None, resources=None) -> int:
    """Planes per slab: the whole block when it is small enough to stay
    cache-resident, otherwise a few planes.  ``itemsize`` is the buffer
    dtype's width — float32 fits twice the planes per slab."""
    if target is None:
        target = _slab_target_bytes(resources)
    plane_bytes = itemsize * n * n
    if n_planes * plane_bytes * 3 <= 2 * target:
        return n_planes
    return max(2, target // (3 * plane_bytes) or 2)


class SweepWorkspace:
    """Preallocated buffers + baked constants for fused sweeps of planes
    ``[lo, hi)`` of ``problem`` at relaxation step ``delta``.

    Exposes (read-only from the kernels' point of view):

    - ``a``: coefficient on the central value, ``1 − δ(6 + c·h²)/h²``
      (exactly 0.0 for the default δ = 1/diag);
    - ``d``: neighbour coefficient δ/h²;
    - ``db``: the δ·b term — ``None`` when b ≡ 0, a float when b is
      constant, else a ``(hi−lo, n, n)`` array;
    - ``lower``/``upper``: the constraint slab (``None``, 0-d scalar
      array, or ``(hi−lo, n, n)`` field view), plus cached per-plane
      views for the plane-sequential kernel;
    - ``dtype``: the buffer dtype all kernel arrays must carry
      (float64 by default; the problem's float64 fields are cast into
      workspace-owned copies once, here, when it differs).
    """

    def __init__(self, problem: ObstacleProblem, delta: float,
                 lo: int = 0, hi: Optional[int] = None,
                 slab: Optional[int] = None,
                 dtype=None, resources=None):
        n = problem.grid.n
        hi = n if hi is None else hi
        if not 0 <= lo < hi <= n:
            raise ValueError(f"invalid plane range [{lo}, {hi}) for n={n}")
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.dtype = resolve_dtype(dtype)
        self.lo = lo
        self.hi = hi
        self.n = n
        m = hi - lo
        self.n_planes = m
        tele = resolve_context(resources).telemetry
        self._tele = _KernelProbe(tele) if tele.enabled else None
        self._bake(problem, delta)

        self.slab = slab if slab is not None else \
            _default_slab(n, m, self.dtype.itemsize, resources=resources)
        if self.slab < 1:
            raise ValueError("slab must be >= 1")
        # Slab scratch (neighbour sums, then |new − old|).  The GS
        # staging array — a full block-sized buffer only the
        # plane-sequential kernel touches — is allocated on first use.
        self._nb = np.empty((min(self.slab, m), n, n), dtype=self.dtype)
        self._stage: Optional[np.ndarray] = None

    def _bake(self, problem: ObstacleProblem, delta: float) -> None:
        """(Re)compute everything derived from ``(problem, delta)``.

        Shared by ``__init__`` and :meth:`rebind` so a pooled workspace
        rebound to a new problem/delta carries *exactly* the constants a
        freshly constructed one would — pooled sweeps stay bit-identical
        to cold ones.
        """
        self.problem = problem
        self.delta = delta
        lo, hi = self.lo, self.hi
        h2 = problem.grid.h ** 2
        self.d = delta / h2
        self.a = 1.0 - delta * (6.0 + problem.c * h2) / h2

        b_slab = problem.b[lo:hi]
        if not b_slab.any():
            self.db: object = None
        elif np.all(b_slab == b_slab.flat[0]):
            self.db = float(delta * b_slab.flat[0])
        else:
            self.db = self._as_dtype(delta * b_slab)

        self.lower = self._constraint_slab(problem.constraint.lower)
        self.upper = self._constraint_slab(problem.constraint.upper)
        self._lower_planes = self._plane_views(self.lower)
        self._upper_planes = self._plane_views(self.upper)

    def rebind(self, problem: ObstacleProblem, delta: float) -> None:
        """Re-aim this workspace at a new ``(problem, delta)`` pair.

        The checkout/reset hook of the campaign workspace pool: the
        expensive allocations (slab scratch, GS staging) survive, only
        the cheap baked constants are recomputed.  The new problem must
        live on the same grid (the buffer shapes are sized to it) and
        the dtype is unchanged — pools key on ``(n, lo, hi, dtype)``.
        """
        if problem.grid.n != self.n:
            raise ValueError(
                f"cannot rebind a {self.n}³ workspace to an "
                f"{problem.grid.n}³ problem"
            )
        if delta <= 0:
            raise ValueError("delta must be positive")
        if self._tele is not None:
            self._tele.rebinds.inc()
        self._bake(problem, delta)

    def _as_dtype(self, field: np.ndarray) -> np.ndarray:
        """The field itself at float64 (no copy — bit-identical default
        path), a workspace-owned cast copy otherwise."""
        if field.dtype == self.dtype:
            return field
        return field.astype(self.dtype)

    def _constraint_slab(self, field: Optional[np.ndarray]):
        if field is None:
            return None
        if field.ndim == 0:
            return self._as_dtype(field)
        return self._as_dtype(field[self.lo:self.hi])

    def _plane_views(self, slab):
        if slab is None:
            return [None] * self.n_planes
        if slab.ndim == 0:
            return [slab] * self.n_planes
        return list(slab)

    def rotation_buffer(self) -> np.ndarray:
        """A fresh ``(hi−lo, n, n)`` array (in the workspace dtype)
        callers can rotate against the iterate (allocated once per
        call — grab it at setup time)."""
        return np.empty((self.n_planes, self.n, self.n), dtype=self.dtype)


def _check_buffers(ws: SweepWorkspace, cur: np.ndarray, nxt: np.ndarray,
                   ghost_below: Optional[np.ndarray],
                   ghost_above: Optional[np.ndarray]) -> None:
    shape = (ws.n_planes, ws.n, ws.n)
    if cur.shape != shape or nxt.shape != shape:
        raise ValueError(f"cur/nxt must have shape {shape}")
    if cur is nxt:
        raise ValueError("cur and nxt must be distinct arrays")
    if not (cur.flags.c_contiguous and nxt.flags.c_contiguous):
        raise ValueError("cur and nxt must be C-contiguous")
    check_dtype(cur, ws.dtype, "cur")
    check_dtype(nxt, ws.dtype, "nxt")
    if ghost_below is not None:
        check_dtype(ghost_below, ws.dtype, "ghost_below")
    if ghost_above is not None:
        check_dtype(ghost_above, ws.dtype, "ghost_above")


def _inplane_sum(nbs: np.ndarray, curs: np.ndarray, n: int) -> None:
    """Add the 4 in-plane neighbours of ``curs`` into ``nbs`` (slab-wise).

    The x-direction uses shifted *flattened* views — contiguous adds are
    ~2× faster than inner-strided ones — which contaminates the first and
    last column of every row with the neighbouring row's edge value; two
    cheap strided passes subtract the contamination back out.
    """
    m = nbs.shape[0]
    np.add(nbs[:, 1:, :], curs[:, :-1, :], out=nbs[:, 1:, :])
    np.add(nbs[:, :-1, :], curs[:, 1:, :], out=nbs[:, :-1, :])
    flat_nb = nbs.reshape(m, n * n)
    flat_cur = curs.reshape(m, n * n)
    np.add(flat_nb[:, 1:], flat_cur[:, :-1], out=flat_nb[:, 1:])
    np.add(flat_nb[:, :-1], flat_cur[:, 1:], out=flat_nb[:, :-1])
    if n > 1:
        np.subtract(nbs[:, 1:, 0], curs[:, :-1, n - 1], out=nbs[:, 1:, 0])
        np.subtract(nbs[:, :-1, n - 1], curs[:, 1:, 0], out=nbs[:, :-1, n - 1])


def jacobi_sweep(ws: SweepWorkspace, cur: np.ndarray, nxt: np.ndarray,
                 ghost_below: Optional[np.ndarray] = None,
                 ghost_above: Optional[np.ndarray] = None) -> float:
    """One fused Jacobi relaxation of all planes: ``nxt = F_δ(cur)``.

    Returns ‖nxt − cur‖∞.  ``ghost_below``/``ghost_above`` substitute for
    the planes just outside ``[lo, hi)`` (``None`` = zero Dirichlet).
    """
    _check_buffers(ws, cur, nxt, ghost_below, ghost_above)
    probe = ws._tele
    t_start = time.perf_counter() if probe is not None else 0.0
    m_total = ws.n_planes
    n = ws.n
    d = ws.d
    a = ws.a
    db = ws.db
    lower, upper = ws.lower, ws.upper
    slab = ws.slab
    diff = 0.0
    for s in range(0, m_total, slab):
        e = min(s + slab, m_total)
        m = e - s
        nbs = ws._nb[:m]
        curs = cur[s:e]
        nxts = nxt[s:e]
        # z-neighbours: one fused add for interior slabs, edge slabs
        # stitch in the ghosts (0 + below + above ≡ below + above, so
        # both paths are bit-identical).
        if s > 0 and e < m_total:
            np.add(cur[s - 1:e - 1], cur[s + 1:e + 1], out=nbs)
        else:
            nbs.fill(0.0)
            if s > 0:
                np.add(nbs, cur[s - 1:e - 1], out=nbs)
            else:
                if m > 1:
                    np.add(nbs[1:], cur[:e - 1], out=nbs[1:])
                if ghost_below is not None:
                    np.add(nbs[0], ghost_below, out=nbs[0])
            if e < m_total:
                np.add(nbs, cur[s + 1:e + 1], out=nbs)
            else:
                if m > 1:
                    np.add(nbs[:-1], cur[s + 1:], out=nbs[:-1])
                if ghost_above is not None:
                    np.add(nbs[-1], ghost_above, out=nbs[-1])
        _inplane_sum(nbs, curs, n)
        # nxt = a·cur + d·nb (+ δb), projected.
        if a == 0.0:
            np.multiply(nbs, d, out=nxts)
        else:
            np.multiply(nbs, d, out=nbs)
            np.multiply(curs, a, out=nxts)
            np.add(nxts, nbs, out=nxts)
        if db is not None:
            np.add(nxts, db if isinstance(db, float) else db[s:e], out=nxts)
        if lower is not None:
            np.maximum(nxts, lower if lower.ndim == 0 else lower[s:e], out=nxts)
        if upper is not None:
            np.minimum(nxts, upper if upper.ndim == 0 else upper[s:e], out=nxts)
        # Fused max-diff while the slab is hot.
        np.subtract(nxts, curs, out=nbs)
        hi_d = float(nbs.max())
        lo_d = float(nbs.min())
        if hi_d > diff:
            diff = hi_d
        if -lo_d > diff:
            diff = -lo_d
    if probe is not None:
        probe.sweep_done("jacobi", time.perf_counter() - t_start)
    return diff


def gauss_seidel_sweep(ws: SweepWorkspace, cur: np.ndarray, nxt: np.ndarray,
                       ghost_below: Optional[np.ndarray] = None,
                       ghost_above: Optional[np.ndarray] = None) -> float:
    """One plane-sequential (Gauss–Seidel) relaxation: plane z sees the
    already-updated plane z−1, the paper's in-node order.

    Returns ‖nxt − cur‖∞.  Stage 1 precomputes, slab-vectorized, every
    contribution independent of updated planes; stage 2 is the three-
    dispatch-per-plane recursion; the diff is one fused pass at the end.
    """
    _check_buffers(ws, cur, nxt, ghost_below, ghost_above)
    probe = ws._tele
    t_start = time.perf_counter() if probe is not None else 0.0
    m_total = ws.n_planes
    n = ws.n
    d = ws.d
    a = ws.a
    db = ws.db
    if ws._stage is None:
        ws._stage = np.empty((m_total, n, n), dtype=ws.dtype)
    stage = ws._stage
    slab = ws.slab
    for s in range(0, m_total, slab):
        e = min(s + slab, m_total)
        m = e - s
        nbs = ws._nb[:m]
        curs = cur[s:e]
        # Above-neighbour (old iterate) …
        if e < m_total:
            np.copyto(nbs, cur[s + 1:e + 1])
        else:
            if m > 1:
                np.copyto(nbs[:-1], cur[s + 1:])
            if ghost_above is not None:
                np.copyto(nbs[-1], ghost_above)
            else:
                nbs[-1].fill(0.0)
        # … plus the 4 in-plane neighbours.
        _inplane_sum(nbs, curs, n)
        stages = stage[s:e]
        if a == 0.0:
            np.multiply(nbs, d, out=stages)
        else:
            np.multiply(nbs, d, out=stages)
            np.multiply(curs, a, out=nbs)
            np.add(stages, nbs, out=stages)
        if db is not None:
            np.add(stages, db if isinstance(db, float) else db[s:e], out=stages)
    # Sequential recursion: nxt[z] = P(stage[z] + d·below).
    los = ws._lower_planes
    ups = ws._upper_planes
    below = ghost_below
    for z in range(m_total):
        nz = nxt[z]
        if below is None:
            np.copyto(nz, stage[z])
        else:
            np.multiply(below, d, out=nz)
            np.add(nz, stage[z], out=nz)
        if los[z] is not None:
            np.maximum(nz, los[z], out=nz)
        if ups[z] is not None:
            np.minimum(nz, ups[z], out=nz)
        below = nz
    np.subtract(nxt, cur, out=stage)
    diff = max(float(stage.max()), -float(stage.min()))
    if probe is not None:
        probe.sweep_done("gauss_seidel", time.perf_counter() - t_start)
    return diff


def block_sweep(ws: SweepWorkspace, cur: np.ndarray, nxt: np.ndarray,
                ghost_below: Optional[np.ndarray],
                ghost_above: Optional[np.ndarray],
                order: str = "gauss_seidel") -> float:
    """One relaxation of a block ``[lo, hi)`` with ghost planes — the
    distributed solver's kernel.  ``order`` picks the in-node schedule."""
    if order == "gauss_seidel":
        return gauss_seidel_sweep(ws, cur, nxt, ghost_below, ghost_above)
    if order == "jacobi":
        return jacobi_sweep(ws, cur, nxt, ghost_below, ghost_above)
    raise ValueError(f"unknown sweep order {order!r}")


# -- workspace pooling hooks ------------------------------------------------------
#
# A sweep campaign runs dozens of near-identical solves; re-allocating
# every workspace's slab scratch + staging buffer per solve is pure
# setup cost.  The campaign engine (repro.campaign) installs a pool on
# its ResourceContext; solver-layer callers go through checkout/checkin
# and never know whether a workspace is fresh or recycled.  The pool
# duck-type is ``checkout(problem, delta, lo, hi, dtype) ->
# SweepWorkspace`` and ``checkin(ws)``; with no pool installed both
# hooks degrade to plain construction / no-op.  Kept here (the lowest
# layer) so the solver never imports the campaign package — no upward
# dependency.


def set_workspace_pool(pool, resources=None):
    """Install ``pool`` as the workspace provider on ``resources``
    (the default context when ``None``); returns the previously
    installed pool (restore it when done)."""
    ctx = resolve_context(resources)
    previous = ctx.workspace_pool
    ctx.workspace_pool = pool
    return previous


def checkout_workspace(problem: ObstacleProblem, delta: float,
                       lo: int = 0, hi: Optional[int] = None,
                       dtype=None, resources=None) -> SweepWorkspace:
    """A workspace for ``(problem, delta, [lo, hi), dtype)`` — recycled
    from ``resources``' pool when one is installed, freshly built
    otherwise.  Pair with :func:`checkin_workspace` on the same
    context."""
    ctx = resolve_context(resources)
    if ctx.workspace_pool is not None:
        return ctx.workspace_pool.checkout(problem, delta, lo=lo, hi=hi,
                                           dtype=dtype, resources=ctx)
    return SweepWorkspace(problem, delta, lo=lo, hi=hi, dtype=dtype,
                          resources=ctx)


def checkin_workspace(ws: SweepWorkspace, resources=None) -> None:
    """Return a checked-out workspace; a no-op when ``resources`` has
    no pool installed (the workspace is garbage-collected as before)."""
    ctx = resolve_context(resources)
    if ctx.workspace_pool is not None:
        ctx.workspace_pool.checkin(ws)


def __getattr__(name: str):
    # PEP 562 read aliases for what used to be module globals, kept so
    # existing introspection (tests asserting the process-wide hook is
    # uninstalled, or peeking at the tuning verdict) stays valid: they
    # now reflect the default context's slots.
    if name == "_workspace_pool":
        return default_context().workspace_pool
    if name == "_tuned_slab_bytes":
        return default_context().slab_bytes
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
