"""3-D finite-difference grid for the obstacle problem.

The paper discretizes a 3-D domain with ``n³`` interior points ("Let n³
denote the number of discretization points"); we use the unit cube with
homogeneous Dirichlet boundary conditions and the standard 7-point
Laplacian stencil, the setting of the companion numerical paper
(Spitéri & Chau 2002).

Arrays are indexed ``u[z, y, x]`` with the z-axis as the block/
decomposition axis: plane ``u[i]`` is the i-th sub-block of n² points.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

import numpy as np

__all__ = ["Grid3D"]


@dataclasses.dataclass(frozen=True)
class Grid3D:
    """Uniform grid on the open unit cube with n interior points per axis.

    ``h = 1/(n+1)`` so that boundary points (value 0) sit at 0 and 1.
    """

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("grid needs at least one interior point per axis")

    @property
    def h(self) -> float:
        """Mesh size."""
        return 1.0 / (self.n + 1)

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.n, self.n, self.n)

    @property
    def n_points(self) -> int:
        return self.n**3

    def zeros(self) -> np.ndarray:
        return np.zeros(self.shape)

    def full(self, value: float) -> np.ndarray:
        return np.full(self.shape, float(value))

    def coordinates(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Meshgrid (z, y, x) of interior-point coordinates in (0, 1)."""
        axis = (np.arange(self.n) + 1) * self.h
        return np.meshgrid(axis, axis, axis, indexing="ij")

    def axis(self) -> np.ndarray:
        """Interior coordinates along one axis."""
        return (np.arange(self.n) + 1) * self.h

    def iter_planes(self) -> Iterator[int]:
        """Sub-block indices along the decomposition (z) axis."""
        return iter(range(self.n))

    def validate_field(self, u: np.ndarray, name: str = "field") -> None:
        """Shape/type check with a message worth reading."""
        if not isinstance(u, np.ndarray):
            raise TypeError(f"{name} must be an ndarray, got {type(u).__name__}")
        if u.shape != self.shape:
            raise ValueError(
                f"{name} has shape {u.shape}, expected {self.shape} for n={self.n}"
            )
