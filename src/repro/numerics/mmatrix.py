"""M-matrix machinery backing the convergence theory.

The paper's condition (2) requires the block operator A to dominate an
M-matrix N = (n_ij): ⟨A_i·v, v_i⟩ ≥ Σ_j n_ij |v_i| |v_j|.  For the
discrete Laplacian-plus-diagonal operators built here that condition
holds because the matrix itself is an M-matrix (Z-matrix + nonsingular +
inverse-positive); asynchronous projected Richardson then converges
(El Baz [13], Miellou & Spitéri [15], [17]).

This module gives explicit small-size dense constructions and checks so
that the property-based tests can exercise the theory directly:

- :func:`laplacian_matrix_1d` / :func:`laplacian_matrix_3d` — the dense
  operator for small n;
- :func:`is_z_matrix`, :func:`is_diagonally_dominant`,
  :func:`is_m_matrix` — structural checks;
- :func:`jacobi_spectral_radius` — ρ(I − D⁻¹A), the asymptotic rate of
  the paper's relaxations;
- :func:`contraction_factor` — ‖I − δA‖ bound for the Richardson map.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "laplacian_matrix_1d",
    "laplacian_matrix_3d",
    "is_z_matrix",
    "is_diagonally_dominant",
    "is_m_matrix",
    "jacobi_spectral_radius",
    "contraction_factor",
]


def laplacian_matrix_1d(n: int, h: float | None = None) -> np.ndarray:
    """Dense 1-D Dirichlet Laplacian (tridiagonal [−1, 2, −1]/h²)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if h is None:
        h = 1.0 / (n + 1)
    A = np.zeros((n, n))
    np.fill_diagonal(A, 2.0)
    idx = np.arange(n - 1)
    A[idx, idx + 1] = -1.0
    A[idx + 1, idx] = -1.0
    return A / (h * h)


def laplacian_matrix_3d(n: int, c: float = 0.0) -> np.ndarray:
    """Dense 3-D Dirichlet Laplacian (+ c·I) via Kronecker sums.

    Size n³×n³ — for validation on small n only; the solvers never
    materialize this.
    """
    h = 1.0 / (n + 1)
    L = laplacian_matrix_1d(n, h)
    eye = np.eye(n)
    A = (
        np.kron(np.kron(L, eye), eye)
        + np.kron(np.kron(eye, L), eye)
        + np.kron(np.kron(eye, eye), L)
    )
    return A + c * np.eye(n**3)


def is_z_matrix(A: np.ndarray, atol: float = 1e-12) -> bool:
    """Off-diagonal entries all ≤ 0."""
    off = A - np.diag(np.diag(A))
    return bool(np.all(off <= atol))


def is_diagonally_dominant(A: np.ndarray, strict_somewhere: bool = True) -> bool:
    """Weak diagonal dominance, strict in at least one row if requested."""
    diag = np.abs(np.diag(A))
    off = np.sum(np.abs(A), axis=1) - diag
    weak = np.all(diag >= off - 1e-12)
    if not weak:
        return False
    if strict_somewhere:
        return bool(np.any(diag > off + 1e-12))
    return True


def is_m_matrix(A: np.ndarray) -> bool:
    """Z-matrix with positive diagonal and nonnegative inverse.

    The inverse-positivity check is the defining property; it is O(n³)
    dense, so only small validation sizes should call this.
    """
    if not is_z_matrix(A):
        return False
    if np.any(np.diag(A) <= 0):
        return False
    try:
        inv = np.linalg.inv(A)
    except np.linalg.LinAlgError:
        return False
    return bool(np.all(inv >= -1e-9))


def jacobi_spectral_radius(A: np.ndarray) -> float:
    """ρ(I − D⁻¹A) — the point-Jacobi convergence rate."""
    D = np.diag(A)
    if np.any(D == 0):
        raise ValueError("zero diagonal entry")
    J = np.eye(A.shape[0]) - A / D[:, None]
    return float(np.max(np.abs(np.linalg.eigvals(J))))


def contraction_factor(A: np.ndarray, delta: float) -> float:
    """‖I − δA‖₂ for symmetric A = max |1 − δλ| over the spectrum.

    The projected Richardson map F_δ is a contraction with (at most)
    this factor because P_K is non-expansive.
    """
    eigs = np.linalg.eigvalsh((A + A.T) / 2.0)
    return float(np.max(np.abs(1.0 - delta * eigs)))
