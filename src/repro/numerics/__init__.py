"""Numerical core: the 3-D obstacle problem and projected Richardson.

Fixed-point problem (1) of the paper: find u* ∈ K with
u* = F_δ(u*) = P_K(u* − δ(A·u* − b)), discretized with the 7-point
Laplacian on the unit cube.
"""

from .blocks import BlockAssignment, partition_planes, weighted_partition
from .convergence import DiffCriterion, ResidualHistory, max_diff
from .grid import Grid3D
from .kernels import (
    SweepWorkspace,
    block_sweep,
    gauss_seidel_sweep,
    jacobi_sweep,
)
from .mmatrix import (
    contraction_factor,
    is_diagonally_dominant,
    is_m_matrix,
    is_z_matrix,
    jacobi_spectral_radius,
    laplacian_matrix_1d,
    laplacian_matrix_3d,
)
from .obstacle import (
    ObstacleProblem,
    membrane_problem,
    options_pricing_problem,
    torsion_problem,
)
from .projection import BoxConstraint, unconstrained
from .tolerances import (
    SUPPORTED_DTYPES,
    ToleranceFloorError,
    check_dtype,
    check_termination_tol,
    equivalence_tol,
    min_termination_tol,
    resolve_dtype,
)
from .transfer import (
    TRANSFER_VERSION,
    prolong,
    prolong_iterate,
    restrict,
)
from .richardson import (
    FLOPS_PER_POINT,
    SolveResult,
    projected_richardson,
    relax_plane,
)

__all__ = [
    "BlockAssignment", "partition_planes", "weighted_partition",
    "DiffCriterion", "ResidualHistory", "max_diff",
    "Grid3D",
    "SweepWorkspace", "block_sweep", "gauss_seidel_sweep", "jacobi_sweep",
    "contraction_factor", "is_diagonally_dominant", "is_m_matrix",
    "is_z_matrix", "jacobi_spectral_radius", "laplacian_matrix_1d",
    "laplacian_matrix_3d",
    "ObstacleProblem", "membrane_problem", "options_pricing_problem",
    "torsion_problem",
    "BoxConstraint", "unconstrained",
    "SUPPORTED_DTYPES", "ToleranceFloorError", "check_dtype",
    "check_termination_tol", "equivalence_tol",
    "min_termination_tol", "resolve_dtype",
    "TRANSFER_VERSION", "prolong", "prolong_iterate", "restrict",
    "FLOPS_PER_POINT", "SolveResult", "projected_richardson", "relax_plane",
]
