"""Projections onto the convex sets K of the obstacle problem.

The paper's framework projects onto a product of closed convex sets
``K = ∏ K_i``; for the obstacle problem each ``K_i`` is a box (pointwise
bound constraints), so the projection is a clip — separable, exact, and
vectorized.

:class:`BoxConstraint` carries optional lower and upper obstacle fields
and projects in place or out of place.  Properties that matter for the
convergence theory — idempotence and non-expansiveness — are asserted in
the property-based test suite.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["BoxConstraint", "unconstrained"]

FieldLike = Union[float, np.ndarray, None]


class BoxConstraint:
    """Pointwise box K = {v : lower ≤ v ≤ upper} (either side optional).

    ``lower``/``upper`` may be scalars, full fields, or None (that side
    unconstrained).  The projection P_K is the pointwise clip.
    """

    def __init__(self, lower: FieldLike = None, upper: FieldLike = None):
        if lower is not None and upper is not None:
            lo = np.asarray(lower, dtype=float)
            up = np.asarray(upper, dtype=float)
            if np.any(lo > up):
                raise ValueError("lower obstacle exceeds upper obstacle somewhere")
        self.lower = None if lower is None else np.asarray(lower, dtype=float)
        self.upper = None if upper is None else np.asarray(upper, dtype=float)

    @property
    def is_trivial(self) -> bool:
        """True when K is the whole space (no projection needed)."""
        return self.lower is None and self.upper is None

    def project(self, v: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """P_K(v); with ``out=v`` the projection is in place (no copy)."""
        if self.is_trivial:
            if out is None:
                return v.copy()
            if out is not v:
                np.copyto(out, v)
            return out
        return np.clip(v, self.lower, self.upper, out=out if out is not None else None)

    def project_plane(self, v: np.ndarray, plane: int,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
        """Project one z-plane (sub-block K_i of the product K = ∏ K_i)."""
        lo = self._plane_of(self.lower, plane)
        up = self._plane_of(self.upper, plane)
        if lo is None and up is None:
            if out is None:
                return v.copy()
            if out is not v:
                np.copyto(out, v)
            return out
        return np.clip(v, lo, up, out=out if out is not None else None)

    @staticmethod
    def _plane_of(field: Optional[np.ndarray], plane: int):
        if field is None:
            return None
        if field.ndim == 0:
            return field
        return field[plane]

    def contains(self, v: np.ndarray, atol: float = 1e-12) -> bool:
        """Whether v ∈ K (up to floating-point slack)."""
        ok = True
        if self.lower is not None:
            ok = ok and bool(np.all(v >= self.lower - atol))
        if self.upper is not None:
            ok = ok and bool(np.all(v <= self.upper + atol))
        return ok

    def violation(self, v: np.ndarray) -> float:
        """Max-norm distance of v from K (0 when feasible)."""
        worst = 0.0
        if self.lower is not None:
            worst = max(worst, float(np.max(self.lower - v, initial=0.0)))
        if self.upper is not None:
            worst = max(worst, float(np.max(v - self.upper, initial=0.0)))
        return worst


def unconstrained() -> BoxConstraint:
    """K = V: the fixed-point problem degenerates to the linear system."""
    return BoxConstraint(None, None)
