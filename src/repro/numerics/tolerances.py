"""Per-dtype numeric bounds for the dtype-parameterized solver stack.

The relaxation sweeps are memory-bandwidth-bound, so halving the element
width (float32 instead of float64) is a genuine throughput lever — but
every tolerance in the repo was written for float64.  This module is the
single place those bounds are derived from the dtype, so the equivalence
suites, the termination thresholds, and the validation at the
dtype boundaries all agree on what "equal" and "converged" mean at a
given precision.

Derivations
-----------
All bounds are expressed in ulps-at-unit-scale, ``eps = finfo(dtype).eps``
(the spacing of 1.0): the canonical problems keep ``|u| = O(1)``, so an
absolute bound of ``k·eps`` means "k last-place units".

``equivalence_tol``
    How far a fused/sharded sweep may drift from the plane-by-plane
    float64 reference after one relaxation.  The float64 contract is the
    historical repo-wide ``1e-12`` (≈ 4.5e3·eps₆₄ — a deliberately
    generous ceiling; observed differences are a few ulps).  The float32
    bound is derived, not copied: one sweep is ~10 rounding operations
    per point plus the cast of the float64 problem data, each
    contributing ≤ eps/2 at unit scale, so differences stay well under
    ~10·eps₃₂ ≈ 1.2e-6; ``100·eps₃₂ ≈ 1.2e-5`` carries the same ×10
    headroom the float64 ceiling does — the "~1e-5 family" for float32.

``min_termination_tol``
    The smallest convergence tolerance a dtype can *resolve*.  The
    termination criterion compares the max-norm diff of two consecutive
    iterates; computed in dtype, that diff carries a quantization error
    of about ``eps·|u|``.  A tolerance below a few ulps of the iterate
    scale would make STOP decisions depend on rounding noise — at
    float32 a request for ``tol=1e-7`` can neither be reached reliably
    nor distinguished from non-convergence.  The floor ``32·eps``
    (≈ 3.8e-6 at float32, ≈ 7.1e-15 at float64) keeps the threshold
    well above the ~1-ulp noise; solver entry points reject tolerances
    below it loudly rather than iterating forever.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "SUPPORTED_DTYPES",
    "ToleranceFloorError",
    "resolve_dtype",
    "check_dtype",
    "check_termination_tol",
    "equivalence_tol",
    "min_termination_tol",
]

DTypeLike = Union[str, type, np.dtype, None]

#: The dtypes the numeric stack is parameterized over.  Everything else
#: (float16, longdouble, complex, int) is rejected at every boundary:
#: the kernels' fused ``out=`` passes and the shared-memory layout are
#: only validated for these two.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

#: ``resolve_dtype(None)`` — the historical behaviour of the whole repo.
DEFAULT_DTYPE = np.dtype(np.float64)


def resolve_dtype(dtype: DTypeLike) -> np.dtype:
    """Normalize a user-facing dtype spec to a supported ``np.dtype``.

    Accepts ``None`` (the float64 default), names (``"float32"``),
    numpy types (``np.float32``), and dtype instances; anything outside
    :data:`SUPPORTED_DTYPES` raises ``ValueError`` — a typo'd or exotic
    dtype must fail at construction, not silently reinterpret bytes
    three layers down in the shared-memory arena.
    """
    if dtype is None:
        return DEFAULT_DTYPE
    try:
        resolved = np.dtype(dtype)
    except TypeError:
        raise ValueError(f"not a dtype: {dtype!r}") from None
    if resolved not in SUPPORTED_DTYPES:
        names = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise ValueError(
            f"unsupported dtype {resolved.name!r}; the numeric stack "
            f"supports {names}"
        )
    return resolved


def check_dtype(array: np.ndarray, expected: DTypeLike, name: str) -> None:
    """Loud mixed-dtype guard for plane/block hand-offs.

    Every boundary where an array crosses into dtype-parameterized
    machinery (kernel buffers, ghost-plane installs, arena scatter)
    calls this instead of letting ``np.copyto``/ufunc casting silently
    round a float64 plane into a float32 slot (or promote a sweep to
    float64 and throw the bandwidth win away).
    """
    expected = np.dtype(expected)
    if array.dtype != expected:
        raise ValueError(
            f"{name} has dtype {array.dtype.name}, expected {expected.name} "
            "— mixed-dtype planes are rejected rather than silently cast"
        )


def equivalence_tol(dtype: DTypeLike) -> float:
    """Max allowed |fused − reference| after one sweep (see module doc)."""
    resolved = resolve_dtype(dtype)
    if resolved == np.dtype(np.float64):
        return 1e-12  # the historical repo-wide contract, unchanged
    return float(100 * np.finfo(resolved).eps)  # ≈ 1.19e-5 for float32


def min_termination_tol(dtype: DTypeLike) -> float:
    """Smallest convergence tolerance resolvable in ``dtype`` diffs."""
    return float(32 * np.finfo(resolve_dtype(dtype)).eps)


class ToleranceFloorError(ValueError):
    """A termination tolerance below what its dtype can resolve.

    The one structured error for the sub-floor-tolerance condition,
    raised at every entry boundary — solver construction, CLI job
    validation, service schema decode — so each front end can turn the
    same condition into its own shape (message + exit code, HTTP 400
    with ``field``) instead of a stack trace.  A ``ValueError``
    subclass: historical ``except ValueError`` call sites keep working.
    """

    #: The wire/CLI field the condition belongs to, for structured
    #: error bodies.
    field = "tolerance"

    def __init__(self, tol: float, dtype: DTypeLike, floor: float):
        self.tol = float(tol)
        self.dtype = resolve_dtype(dtype).name
        self.floor = float(floor)
        super().__init__(
            f"tol={self.tol:g} is below the {self.dtype} "
            f"termination floor {self.floor:g} "
            "(see repro.numerics.tolerances)"
        )


def check_termination_tol(tol: float, dtype: DTypeLike) -> float:
    """Validate that ``tol`` is resolvable in ``dtype``; returns it.

    Raises :class:`ToleranceFloorError` below
    :func:`min_termination_tol` — the single validation every boundary
    (solver, CLI, service schema, ladder planning) shares, so the floor
    is enforced identically everywhere.
    """
    resolved = resolve_dtype(dtype)
    floor = min_termination_tol(resolved)
    tol = float(tol)
    if tol < floor:
        raise ToleranceFloorError(tol, resolved, floor)
    return tol
